#ifndef SPANGLE_CODEC_CHUNK_FRAME_H_
#define SPANGLE_CODEC_CHUNK_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace spangle {
namespace codec {

/// The columnar chunk frame: the versioned, self-describing container
/// every encoded partition travels in — spill files, shuffle blocks, and
/// the PutBlock/FetchBlock RPC payloads are all exactly one frame.
///
/// Layout (little-endian):
///
///   offset  size  field
///   0       4     magic "SPCF"
///   4       1     version (kFrameVersion)
///   5       1     section count
///   6       2     flags (reserved, must be 0)
///   8       4     record count
///   12      8     content hash
///   20      16*n  section table (one SectionDesc per section)
///   ...           section payload slabs, back to back, in table order
///
/// Section table entry:
///
///   u8  kind      (SectionKind)
///   u8  encoding  (SectionEncoding)
///   u16 reserved (0)
///   u32 reserved (0)
///   u64 payload bytes
///
/// The content hash is Hash64 over the 12 header bytes before the hash
/// field, chained over everything after it (table + slabs) — so record
/// count, section layout, and every payload byte are all committed. It is
/// the frame's *content address*: equal hash <=> equal frame bytes (up to
/// hash collision), which is what lets BlockManager dedup a speculation
/// winner, a task retry, and a re-planned stage to one stored block, and
/// lets the RPC layer turn silent wire corruption into a retryable fetch
/// error.
///
/// Parsing is strict and Status-returning (frames cross process
/// boundaries): bad magic / version / flags, a section table that
/// overruns the buffer, slab sizes that do not add up to the remaining
/// bytes, or a content-hash mismatch are all errors, never crashes.

inline constexpr char kFrameMagic[4] = {'S', 'P', 'C', 'F'};
inline constexpr uint8_t kFrameVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 20;
inline constexpr size_t kSectionDescBytes = 16;
inline constexpr size_t kMaxFrameSections = 8;

/// What a section holds. Values are wire format — append only.
enum class SectionKind : uint8_t {
  kKeys = 1,      // the pair-key column
  kValues = 2,    // the payload column (or whole records for kRaw types)
  kPresence = 3,  // bitpacked presence bitmask for a zero-suppressed
                  // values section (bit i set <=> record i stored)
  kRecords = 4,   // record-codec fallback: records back to back
};

/// How a section's payload is encoded. Values are wire format.
enum class SectionEncoding : uint8_t {
  kRaw = 0,             // verbatim slab (memcpy / record codec)
  kVarintDelta = 1,     // zigzag(delta) varints (integer columns)
  kZeroSuppressed = 2,  // only not-all-zero elements, driven by the
                        // preceding kPresence section
  kBitpacked = 3,       // one bit per record (kPresence sections)
};

struct SectionDesc {
  SectionKind kind = SectionKind::kValues;
  SectionEncoding encoding = SectionEncoding::kRaw;
  uint64_t bytes = 0;
};

/// Computes the frame's content hash from its full encoded bytes. The
/// caller must know `size >= kFrameHeaderBytes`.
uint64_t ComputeFrameHash(const char* data, size_t size);

/// Extracts the *stored* content hash without validating the body; used
/// where the bytes were already validated (or will be) and only the
/// address is needed. Fails on a buffer too short to be a frame.
Result<uint64_t> PeekFrameHash(const char* data, size_t size);

/// Assembles one frame. Sections are declared up front (the table is
/// sized before payloads stream in), then written back to back via
/// buffer()/EndSection; Finish() patches the table and content hash.
///
///   FrameBuilder b(records.size(), /*num_sections=*/2);
///   b.BeginSection(SectionKind::kKeys, SectionEncoding::kVarintDelta);
///   ... append key bytes to *b.buffer() ...
///   b.EndSection();
///   b.BeginSection(SectionKind::kValues, SectionEncoding::kRaw);
///   ... append value bytes ...
///   b.EndSection();
///   std::string frame = b.Finish(&content_hash);
class FrameBuilder {
 public:
  FrameBuilder(uint32_t record_count, int num_sections);

  /// Opens the next declared section; payload bytes are appended to
  /// *buffer() until EndSection(). Sections must be opened in order.
  void BeginSection(SectionKind kind, SectionEncoding encoding);
  std::string* buffer() { return &bytes_; }
  void EndSection();

  /// Patches the section table and content hash and moves the frame out.
  /// All declared sections must be closed. The builder is spent after.
  std::string Finish(uint64_t* content_hash);

 private:
  const int num_sections_;
  int begun_ = 0;
  int ended_ = 0;
  size_t section_start_ = 0;  // payload start of the open section
  std::string bytes_;         // header + table (zeroed) + payloads so far
};

/// Zero-copy read view of a parsed frame. Borrows the underlying bytes:
/// valid only while they live (a spill-file mmap, an RPC payload string).
class FrameView {
 public:
  /// Validates structure and, unless `verify_hash` is false, the content
  /// hash. Spill readback and RPC receipt both verify; skip only when the
  /// same bytes were verified moments ago.
  static Result<FrameView> Parse(const char* data, size_t size,
                                 bool verify_hash = true);

  uint32_t record_count() const { return record_count_; }
  uint64_t content_hash() const { return content_hash_; }
  int num_sections() const { return static_cast<int>(sections_.size()); }
  const SectionDesc& section(int i) const { return sections_[i].desc; }
  const char* section_data(int i) const { return sections_[i].data; }

 private:
  struct Section {
    SectionDesc desc;
    const char* data = nullptr;
  };

  uint32_t record_count_ = 0;
  uint64_t content_hash_ = 0;
  std::vector<Section> sections_;
};

}  // namespace codec
}  // namespace spangle

#endif  // SPANGLE_CODEC_CHUNK_FRAME_H_
