#ifndef SPANGLE_CODEC_COLUMNAR_H_
#define SPANGLE_CODEC_COLUMNAR_H_

#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "codec/chunk_frame.h"
#include "codec/record_codec.h"
#include "codec/varint.h"
#include "common/logging.h"
#include "common/result.h"

namespace spangle {
namespace codec {

/// Columnar partition codec: encodes a std::vector<T> partition as one
/// chunk frame (chunk_frame.h) of contiguous slabs instead of the old
/// record-at-a-time stream. The split per record type:
///
///   pair<K integral, V>   keys section (zigzag-delta varints, or raw
///                         when the data defeats the compression) plus
///                         a value slab for the V column
///   integral T            one varint-delta (or raw) column
///   trivially-copyable T  value slab: zero-suppressed — a bitpacked
///                         presence bitmask plus only the not-all-zero
///                         elements — or raw when the data is dense
///                         enough that suppression would grow it
///   everything else       kRecords fallback: record codec back to back
///
/// Every encoding choice is made per partition from the actual bytes, so
/// the frame is never larger than (slab overhead aside) the raw slab,
/// and decode is driven by the self-describing section table. Roundtrips
/// are bit-exact for all kSpillable types: zero-suppression compares raw
/// bytes (so -0.0, denormals, and padding survive), and key deltas use
/// wraparound arithmetic (any signed/unsigned key pattern survives).

/// One encoded partition. `content_hash` is the frame's content address
/// (see chunk_frame.h); `raw_bytes` is what the legacy record-at-a-time
/// format would have occupied, for compression accounting
/// (codec_bytes_raw vs codec_bytes_encoded).
struct EncodedFrame {
  std::string bytes;
  uint64_t content_hash = 0;
  uint64_t raw_bytes = 0;
};

namespace columnar_detail {

template <typename K>
inline constexpr bool kVarintKey =
    std::is_integral_v<K> && !std::is_same_v<K, bool> && sizeof(K) <= 8;

template <typename T>
struct KeyColumnTrait : std::false_type {};
template <typename K, typename V>
struct KeyColumnTrait<std::pair<K, V>>
    : std::bool_constant<kVarintKey<K>> {};

/// Pairs whose key gets its own varint column; the value column is
/// encoded by the element rules below.
template <typename T>
inline constexpr bool kHasKeyColumn = KeyColumnTrait<T>::value;

template <typename K>
uint64_t WidenKey(K k) {
  // Sign-extend signed keys so small negatives stay small after zigzag;
  // decoders re-widen the truncated key the same way, keeping encoder
  // and decoder delta baselines identical for every bit pattern.
  if constexpr (std::is_signed_v<K>) {
    return static_cast<uint64_t>(static_cast<int64_t>(k));
  } else {
    return static_cast<uint64_t>(k);
  }
}

template <typename E>
bool IsAllZeroBytes(const E& e) {
  // memcmp against a zeroed image: compilers lower the fixed-size compare
  // to a couple of wide loads, which the per-byte loop this replaces
  // defeated (the encoder scans every element with this predicate).
  static constexpr unsigned char kZeros[sizeof(E)] = {};
  return std::memcmp(&e, kZeros, sizeof(E)) == 0;
}

/// Encodes the whole key column as zigzag-delta varints into `scratch`
/// in ONE pass, bailing out as soon as the varint bytes reach the raw
/// column size (raw wins ties). Returns whether varint-delta won;
/// `scratch` holds the encoded column when it did. Fused choose+encode:
/// the separate size-counting pass costs as much as encoding, so the
/// optimistic encode is free when varint wins (the sparse-shuffle common
/// case) and bounded by the raw size when it loses.
template <typename K, typename GetKey>
bool EncodeKeysVarint(size_t n, const GetKey& get, std::string* scratch) {
  const size_t raw_bytes = n * sizeof(K);
  scratch->resize(raw_bytes + kMaxVarintBytes);
  char* const base = scratch->data();
  char* const limit = base + raw_bytes;
  char* p = base;
  uint64_t prev = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t cur = WidenKey<K>(get(i));
    uint64_t zz = ZigZag(static_cast<int64_t>(cur - prev));
    prev = cur;
    if (p >= limit) return false;  // already as big as raw; raw wins
    while (zz >= 0x80) {
      *p++ = static_cast<char>((zz & 0x7F) | 0x80);
      zz >>= 7;
    }
    *p++ = static_cast<char>(zz);
  }
  if (n > 0 && static_cast<size_t>(p - base) >= raw_bytes) return false;
  scratch->resize(static_cast<size_t>(p - base));
  return true;
}

template <typename K, typename GetKey>
void WriteKeySection(FrameBuilder* b, size_t n, const GetKey& get,
                     bool varint, const std::string& scratch) {
  b->BeginSection(SectionKind::kKeys, varint ? SectionEncoding::kVarintDelta
                                             : SectionEncoding::kRaw);
  std::string* out = b->buffer();
  if (varint) {
    out->append(scratch);
  } else {
    const size_t at = out->size();
    out->resize(at + n * sizeof(K));
    char* p = out->data() + at;
    for (size_t i = 0; i < n; ++i) {
      const K k = get(i);
      std::memcpy(p, &k, sizeof(K));
      p += sizeof(K);
    }
  }
  b->EndSection();
}

template <typename K>
Status DecodeKeySection(const SectionDesc& desc, const char* data, size_t n,
                        std::vector<K>* keys) {
  if (desc.kind != SectionKind::kKeys) {
    return Status::InvalidArgument("expected a keys section");
  }
  keys->resize(n);
  if (desc.encoding == SectionEncoding::kVarintDelta) {
    size_t used = 0;
    uint64_t prev = 0;
    for (size_t i = 0; i < n; ++i) {
      uint64_t zz = 0;
      // Small deltas (the common case by construction) are one byte.
      if (used < desc.bytes &&
          static_cast<unsigned char>(data[used]) < 0x80) {
        zz = static_cast<unsigned char>(data[used]);
        ++used;
      } else if (!GetVarint(data + used, desc.bytes - used, &zz, &used)) {
        return Status::InvalidArgument("truncated key varint");
      }
      prev += static_cast<uint64_t>(UnZigZag(zz));
      (*keys)[i] = static_cast<K>(prev);
      prev = WidenKey<K>((*keys)[i]);
    }
    if (used != desc.bytes) {
      return Status::InvalidArgument("trailing bytes in key section");
    }
    return Status::OK();
  }
  if (desc.encoding != SectionEncoding::kRaw ||
      desc.bytes != n * sizeof(K)) {
    return Status::InvalidArgument("malformed raw key section");
  }
  if (n > 0) std::memcpy(keys->data(), data, n * sizeof(K));
  return Status::OK();
}

/// ONE branchless scan over the value column: builds the bitpacked
/// presence mask into `mask`, compacts the not-all-zero elements into
/// `values`, and returns their count. Every element is stored
/// unconditionally and the write pointer advances by a conditional move
/// — at mid densities a per-element `if (nonzero)` branch is the
/// encoder's dominant cost (mispredicted ~2·density·n times), while the
/// extra unconditional stores are nearly free. The old choose/mask/write
/// trio scanned the column three times; this is the only pass.
template <typename E, typename GetVal>
size_t BuildPresenceAndValues(size_t n, const GetVal& get, std::string* mask,
                              std::string* values) {
  mask->assign((n + 7) / 8, '\0');
  values->resize(n * sizeof(E));
  char* m = mask->data();
  char* v = values->data();
  size_t nonzero = 0;
  for (size_t i = 0; i < n; ++i) {
    const E& e = get(i);
    const unsigned nz = IsAllZeroBytes<E>(e) ? 0u : 1u;
    m[i / 8] |= static_cast<char>(nz << (i % 8));
    std::memcpy(v, &e, sizeof(E));
    v += nz * sizeof(E);
    nonzero += nz;
  }
  values->resize(nonzero * sizeof(E));
  return nonzero;
}

/// Zero-suppression pays when the mask plus the surviving elements beat
/// the raw slab.
inline bool ZeroSuppressionWins(size_t mask_bytes, size_t nonzero,
                                size_t elem_size, size_t n) {
  return mask_bytes + nonzero * elem_size < n * elem_size;
}

template <typename E, typename GetVal>
void WriteValueSections(FrameBuilder* b, size_t n, const GetVal& get,
                        bool zero_suppress, const std::string& mask,
                        const std::string& values) {
  std::string* out = b->buffer();
  if (zero_suppress) {
    b->BeginSection(SectionKind::kPresence, SectionEncoding::kBitpacked);
    out->append(mask);
    b->EndSection();
    b->BeginSection(SectionKind::kValues, SectionEncoding::kZeroSuppressed);
    out->append(values);
    b->EndSection();
    return;
  }
  // Dense column: the raw slab needs the zero elements too, so it is
  // re-walked from the records (a straight strided copy).
  b->BeginSection(SectionKind::kValues, SectionEncoding::kRaw);
  const size_t at = out->size();
  out->resize(at + n * sizeof(E));
  char* p = out->data() + at;
  for (size_t i = 0; i < n; ++i) {
    const E& e = get(i);
    std::memcpy(p, &e, sizeof(E));
    p += sizeof(E);
  }
  b->EndSection();
}

/// Decodes the value column that starts at section `s` of `view`; calls
/// `put(i, E)` for each record. Advances *s past the consumed sections.
template <typename E, typename PutVal>
Status DecodeValueSections(const FrameView& view, int* s, size_t n,
                           const PutVal& put) {
  if (*s >= view.num_sections()) {
    return Status::InvalidArgument("missing value section");
  }
  const SectionDesc& first = view.section(*s);
  if (first.kind == SectionKind::kPresence) {
    if (first.encoding != SectionEncoding::kBitpacked ||
        first.bytes != (n + 7) / 8) {
      return Status::InvalidArgument("malformed presence section");
    }
    const char* mask = view.section_data(*s);
    ++*s;
    if (*s >= view.num_sections()) {
      return Status::InvalidArgument("presence section without values");
    }
    const SectionDesc& vals = view.section(*s);
    if (vals.kind != SectionKind::kValues ||
        vals.encoding != SectionEncoding::kZeroSuppressed) {
      return Status::InvalidArgument("expected zero-suppressed values");
    }
    const char* data = view.section_data(*s);
    size_t offset = 0;
    for (size_t i = 0; i < n; ++i) {
      E e{};
      std::memset(&e, 0, sizeof(E));
      const bool present =
          (static_cast<unsigned char>(mask[i / 8]) >> (i % 8)) & 1u;
      if (present) {
        if (vals.bytes - offset < sizeof(E)) {
          return Status::InvalidArgument("zero-suppressed values truncated");
        }
        std::memcpy(&e, data + offset, sizeof(E));
        offset += sizeof(E);
      }
      put(i, e);
    }
    if (offset != vals.bytes) {
      return Status::InvalidArgument("trailing zero-suppressed values");
    }
    ++*s;
    return Status::OK();
  }
  if (first.kind != SectionKind::kValues ||
      first.encoding != SectionEncoding::kRaw ||
      first.bytes != n * sizeof(E)) {
    return Status::InvalidArgument("malformed raw value section");
  }
  const char* data = view.section_data(*s);
  for (size_t i = 0; i < n; ++i) {
    E e{};
    std::memcpy(&e, data + i * sizeof(E), sizeof(E));
    put(i, e);
  }
  ++*s;
  return Status::OK();
}

template <typename E, typename GetVal>
void WriteRecordSection(FrameBuilder* b, size_t n, const GetVal& get) {
  b->BeginSection(SectionKind::kRecords, SectionEncoding::kRaw);
  for (size_t i = 0; i < n; ++i) Encode(get(i), b->buffer());
  b->EndSection();
}

template <typename E, typename PutVal>
Status DecodeRecordSection(const FrameView& view, int* s, size_t n,
                           const PutVal& put) {
  if (*s >= view.num_sections()) {
    return Status::InvalidArgument("missing records section");
  }
  const SectionDesc& desc = view.section(*s);
  if (desc.kind != SectionKind::kRecords ||
      desc.encoding != SectionEncoding::kRaw) {
    return Status::InvalidArgument("expected a records section");
  }
  // The content hash was verified before any record is walked, so the
  // record codec's trusted CHECKs cannot fire on wire corruption — only
  // on a genuine encoder bug.
  const char* data = view.section_data(*s);
  size_t used = 0;
  for (size_t i = 0; i < n; ++i) {
    put(i, Decode<E>(data + used, desc.bytes - used, &used));
  }
  if (used != desc.bytes) {
    return Status::InvalidArgument("trailing bytes in records section");
  }
  ++*s;
  return Status::OK();
}

}  // namespace columnar_detail

/// Encodes one partition into a columnar chunk frame.
template <typename T>
EncodedFrame EncodePartitionFrame(const std::vector<T>& records) {
  namespace cd = columnar_detail;
  static_assert(kSpillable<T>, "record type has no spill codec");
  SPANGLE_CHECK_LE(records.size(),
                   static_cast<size_t>(std::numeric_limits<uint32_t>::max()));
  const size_t n = records.size();
  const auto count = static_cast<uint32_t>(n);
  EncodedFrame out;
  if constexpr (cd::kHasKeyColumn<T>) {
    using K = typename T::first_type;
    using V = typename T::second_type;
    const auto key_at = [&](size_t i) { return records[i].first; };
    const auto val_at = [&](size_t i) -> const V& {
      return records[i].second;
    };
    std::string key_scratch;
    const bool key_varint = cd::EncodeKeysVarint<K>(n, key_at, &key_scratch);
    const size_t key_bytes = key_varint ? key_scratch.size() : n * sizeof(K);
    if constexpr (std::is_trivially_copyable_v<V>) {
      std::string mask, values;
      const size_t nonzero =
          cd::BuildPresenceAndValues<V>(n, val_at, &mask, &values);
      const bool zero_suppress =
          cd::ZeroSuppressionWins(mask.size(), nonzero, sizeof(V), n);
      FrameBuilder b(count, zero_suppress ? 3 : 2);
      b.buffer()->reserve(
          b.buffer()->size() + key_bytes +
          (zero_suppress ? mask.size() + values.size() : n * sizeof(V)));
      cd::WriteKeySection<K>(&b, n, key_at, key_varint, key_scratch);
      cd::WriteValueSections<V>(&b, n, val_at, zero_suppress, mask, values);
      out.bytes = b.Finish(&out.content_hash);
      // Legacy format: uint32 count + whole-pair memcpy per record.
      out.raw_bytes = sizeof(uint32_t) + n * sizeof(T);
    } else {
      FrameBuilder b(count, 2);
      cd::WriteKeySection<K>(&b, n, key_at, key_varint, key_scratch);
      const size_t before = b.buffer()->size();
      cd::WriteRecordSection<V>(&b, n, val_at);
      const size_t value_record_bytes = b.buffer()->size() - before;
      out.bytes = b.Finish(&out.content_hash);
      out.raw_bytes = sizeof(uint32_t) + n * sizeof(K) + value_record_bytes;
    }
  } else if constexpr (cd::kVarintKey<T>) {
    const auto key_at = [&](size_t i) { return records[i]; };
    std::string key_scratch;
    const bool key_varint = cd::EncodeKeysVarint<T>(n, key_at, &key_scratch);
    FrameBuilder b(count, 1);
    cd::WriteKeySection<T>(&b, n, key_at, key_varint, key_scratch);
    out.bytes = b.Finish(&out.content_hash);
    out.raw_bytes = sizeof(uint32_t) + n * sizeof(T);
  } else if constexpr (std::is_trivially_copyable_v<T>) {
    const auto val_at = [&](size_t i) -> const T& { return records[i]; };
    std::string mask, values;
    const size_t nonzero =
        cd::BuildPresenceAndValues<T>(n, val_at, &mask, &values);
    const bool zero_suppress =
        cd::ZeroSuppressionWins(mask.size(), nonzero, sizeof(T), n);
    FrameBuilder b(count, zero_suppress ? 2 : 1);
    cd::WriteValueSections<T>(&b, n, val_at, zero_suppress, mask, values);
    out.bytes = b.Finish(&out.content_hash);
    out.raw_bytes = sizeof(uint32_t) + n * sizeof(T);
  } else {
    const auto val_at = [&](size_t i) -> const T& { return records[i]; };
    FrameBuilder b(count, 1);
    const size_t before = b.buffer()->size();
    cd::WriteRecordSection<T>(&b, n, val_at);
    const size_t record_bytes = b.buffer()->size() - before;
    out.bytes = b.Finish(&out.content_hash);
    out.raw_bytes = sizeof(uint32_t) + record_bytes;
  }
  return out;
}

/// Decodes a partition from an already-parsed frame view.
template <typename T>
Result<std::vector<T>> DecodePartitionFrame(const FrameView& view) {
  namespace cd = columnar_detail;
  static_assert(kSpillable<T>, "record type has no spill codec");
  const size_t n = view.record_count();
  std::vector<T> records;
  int s = 0;
  if constexpr (cd::kHasKeyColumn<T>) {
    using K = typename T::first_type;
    using V = typename T::second_type;
    if (view.num_sections() < 2) {
      return Status::InvalidArgument("key-column frame needs >= 2 sections");
    }
    std::vector<K> keys;
    SPANGLE_RETURN_NOT_OK(cd::DecodeKeySection<K>(
        view.section(0), view.section_data(0), n, &keys));
    s = 1;
    if constexpr (std::is_trivially_copyable_v<V>) {
      records.resize(n);
      const auto put = [&](size_t i, V v) { records[i] = T(keys[i], v); };
      SPANGLE_RETURN_NOT_OK(cd::DecodeValueSections<V>(view, &s, n, put));
    } else {
      // emplace in record order (the section is walked sequentially), so
      // V need not be default-constructible.
      records.reserve(n);
      const auto put = [&](size_t i, V v) {
        records.emplace_back(keys[i], std::move(v));
      };
      SPANGLE_RETURN_NOT_OK(cd::DecodeRecordSection<V>(view, &s, n, put));
    }
  } else if constexpr (cd::kVarintKey<T>) {
    if (view.num_sections() != 1) {
      return Status::InvalidArgument("integral frame needs one section");
    }
    SPANGLE_RETURN_NOT_OK(cd::DecodeKeySection<T>(
        view.section(0), view.section_data(0), n, &records));
    s = 1;
  } else if constexpr (std::is_trivially_copyable_v<T>) {
    records.resize(n);
    const auto put = [&](size_t i, T v) { records[i] = v; };
    SPANGLE_RETURN_NOT_OK(cd::DecodeValueSections<T>(view, &s, n, put));
  } else {
    records.reserve(n);
    const auto put = [&](size_t i, T v) {
      (void)i;
      records.push_back(std::move(v));
    };
    SPANGLE_RETURN_NOT_OK(cd::DecodeRecordSection<T>(view, &s, n, put));
  }
  if (s != view.num_sections()) {
    return Status::InvalidArgument("unconsumed frame sections");
  }
  return records;
}

/// Parses + decodes in one step (the common path). Verifies the content
/// hash unless told not to.
template <typename T>
Result<std::vector<T>> DecodePartitionFrame(const char* data, size_t size,
                                            bool verify_hash = true) {
  auto view = FrameView::Parse(data, size, verify_hash);
  SPANGLE_RETURN_NOT_OK(view.status());
  return DecodePartitionFrame<T>(*view);
}

}  // namespace codec
}  // namespace spangle

#endif  // SPANGLE_CODEC_COLUMNAR_H_
