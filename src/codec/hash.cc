#include "codec/hash.h"

#include <cstring>

namespace spangle {
namespace codec {

namespace {

constexpr uint64_t kPrime1 = 0x9E3779B185EBCA87ULL;
constexpr uint64_t kPrime2 = 0xC2B2AE3D27D4EB4FULL;
constexpr uint64_t kPrime3 = 0x165667B19E3779F9ULL;
constexpr uint64_t kPrime4 = 0x85EBCA77C2B2AE63ULL;
constexpr uint64_t kPrime5 = 0x27D4EB2F165667C5ULL;

inline uint64_t Rotl(uint64_t v, int r) {
  return (v << r) | (v >> (64 - r));
}

inline uint64_t Read64(const unsigned char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint32_t Read32(const unsigned char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint64_t Round(uint64_t acc, uint64_t input) {
  acc += input * kPrime2;
  return Rotl(acc, 31) * kPrime1;
}

inline uint64_t MergeRound(uint64_t acc, uint64_t val) {
  acc ^= Round(0, val);
  return acc * kPrime1 + kPrime4;
}

}  // namespace

uint64_t Hash64(const void* data, size_t size, uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  const unsigned char* const end = p + size;
  uint64_t h;
  if (size >= 32) {
    uint64_t v1 = seed + kPrime1 + kPrime2;
    uint64_t v2 = seed + kPrime2;
    uint64_t v3 = seed;
    uint64_t v4 = seed - kPrime1;
    const unsigned char* const limit = end - 32;
    do {
      v1 = Round(v1, Read64(p));
      v2 = Round(v2, Read64(p + 8));
      v3 = Round(v3, Read64(p + 16));
      v4 = Round(v4, Read64(p + 24));
      p += 32;
    } while (p <= limit);
    h = Rotl(v1, 1) + Rotl(v2, 7) + Rotl(v3, 12) + Rotl(v4, 18);
    h = MergeRound(h, v1);
    h = MergeRound(h, v2);
    h = MergeRound(h, v3);
    h = MergeRound(h, v4);
  } else {
    h = seed + kPrime5;
  }
  h += static_cast<uint64_t>(size);
  while (p + 8 <= end) {
    h ^= Round(0, Read64(p));
    h = Rotl(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<uint64_t>(Read32(p)) * kPrime1;
    h = Rotl(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<uint64_t>(*p) * kPrime5;
    h = Rotl(h, 11) * kPrime1;
    ++p;
  }
  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

}  // namespace codec
}  // namespace spangle
