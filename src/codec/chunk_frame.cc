#include "codec/chunk_frame.h"

#include <cstring>

#include "codec/hash.h"
#include "common/logging.h"

namespace spangle {
namespace codec {

namespace {

constexpr size_t kHashFieldOffset = 12;

void PutU16(uint16_t v, std::string* out) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutU32(uint32_t v, std::string* out) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutU64(uint64_t v, std::string* out) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
// spangle-lint: untrusted — reads raw bytes from the wire; the caller has
// already bounds-checked `p`, and misaligned input must not trap (memcpy,
// never reinterpret_cast).
T ReadLE(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

bool ValidSectionKind(uint8_t raw) {
  return raw >= static_cast<uint8_t>(SectionKind::kKeys) &&
         raw <= static_cast<uint8_t>(SectionKind::kRecords);
}

bool ValidSectionEncoding(uint8_t raw) {
  return raw <= static_cast<uint8_t>(SectionEncoding::kBitpacked);
}

}  // namespace

uint64_t ComputeFrameHash(const char* data, size_t size) {
  SPANGLE_DCHECK(size >= kFrameHeaderBytes);
  // Chained over [0, 12) — magic, version, counts — then everything
  // after the hash field, so the digest commits to the whole frame
  // except its own storage.
  const uint64_t head = Hash64(data, kHashFieldOffset);
  return Hash64(data + kFrameHeaderBytes, size - kFrameHeaderBytes, head);
}

// spangle-lint: untrusted — `data` is a wire buffer; malformed input must
// surface as Status, never as a crash.
Result<uint64_t> PeekFrameHash(const char* data, size_t size) {
  if (size < kFrameHeaderBytes) {
    return Status::InvalidArgument("buffer too short for a chunk frame");
  }
  return ReadLE<uint64_t>(data + kHashFieldOffset);
}

FrameBuilder::FrameBuilder(uint32_t record_count, int num_sections)
    : num_sections_(num_sections) {
  SPANGLE_CHECK_GE(num_sections, 0);
  SPANGLE_CHECK_LE(static_cast<size_t>(num_sections), kMaxFrameSections);
  bytes_.append(kFrameMagic, sizeof(kFrameMagic));
  bytes_.push_back(static_cast<char>(kFrameVersion));
  bytes_.push_back(static_cast<char>(num_sections));
  PutU16(0, &bytes_);  // flags
  PutU32(record_count, &bytes_);
  PutU64(0, &bytes_);  // content hash, patched by Finish
  // Section table placeholder; kinds/encodings/sizes patched as sections
  // are declared and closed.
  bytes_.append(static_cast<size_t>(num_sections) * kSectionDescBytes, '\0');
}

void FrameBuilder::BeginSection(SectionKind kind, SectionEncoding encoding) {
  SPANGLE_CHECK_EQ(begun_, ended_) << "previous section still open";
  SPANGLE_CHECK_LT(begun_, num_sections_) << "more sections than declared";
  char* entry = bytes_.data() + kFrameHeaderBytes +
                static_cast<size_t>(begun_) * kSectionDescBytes;
  entry[0] = static_cast<char>(kind);
  entry[1] = static_cast<char>(encoding);
  ++begun_;
  section_start_ = bytes_.size();
}

void FrameBuilder::EndSection() {
  SPANGLE_CHECK_EQ(begun_, ended_ + 1) << "no open section";
  const uint64_t n = bytes_.size() - section_start_;
  char* entry = bytes_.data() + kFrameHeaderBytes +
                static_cast<size_t>(ended_) * kSectionDescBytes;
  std::memcpy(entry + 8, &n, sizeof(n));
  ++ended_;
}

std::string FrameBuilder::Finish(uint64_t* content_hash) {
  SPANGLE_CHECK_EQ(ended_, num_sections_) << "undeclared or open sections";
  const uint64_t hash = ComputeFrameHash(bytes_.data(), bytes_.size());
  std::memcpy(bytes_.data() + kHashFieldOffset, &hash, sizeof(hash));
  if (content_hash != nullptr) *content_hash = hash;
  return std::move(bytes_);
}

// spangle-lint: untrusted — the primary chunk-frame decode entry point;
// every malformed-input shape below returns InvalidArgument/IOError.
Result<FrameView> FrameView::Parse(const char* data, size_t size,
                                   bool verify_hash) {
  if (size < kFrameHeaderBytes) {
    return Status::InvalidArgument("chunk frame truncated: " +
                                   std::to_string(size) + " bytes");
  }
  if (std::memcmp(data, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    return Status::InvalidArgument("bad chunk frame magic");
  }
  const auto version = static_cast<uint8_t>(data[4]);
  if (version != kFrameVersion) {
    return Status::InvalidArgument("unsupported chunk frame version " +
                                   std::to_string(version));
  }
  const auto num_sections = static_cast<uint8_t>(data[5]);
  if (num_sections > kMaxFrameSections) {
    return Status::InvalidArgument("chunk frame declares " +
                                   std::to_string(num_sections) +
                                   " sections (max " +
                                   std::to_string(kMaxFrameSections) + ")");
  }
  if (ReadLE<uint16_t>(data + 6) != 0) {
    return Status::InvalidArgument("chunk frame has unknown flags set");
  }
  FrameView view;
  view.record_count_ = ReadLE<uint32_t>(data + 8);
  view.content_hash_ = ReadLE<uint64_t>(data + kHashFieldOffset);
  const size_t table_bytes =
      static_cast<size_t>(num_sections) * kSectionDescBytes;
  if (size - kFrameHeaderBytes < table_bytes) {
    return Status::InvalidArgument("chunk frame section table truncated");
  }
  size_t offset = kFrameHeaderBytes + table_bytes;
  view.sections_.reserve(num_sections);
  for (uint8_t i = 0; i < num_sections; ++i) {
    const char* entry =
        data + kFrameHeaderBytes + static_cast<size_t>(i) * kSectionDescBytes;
    const auto kind = static_cast<uint8_t>(entry[0]);
    const auto encoding = static_cast<uint8_t>(entry[1]);
    if (!ValidSectionKind(kind) || !ValidSectionEncoding(encoding)) {
      return Status::InvalidArgument("chunk frame section " +
                                     std::to_string(i) +
                                     " has unknown kind/encoding");
    }
    if (ReadLE<uint16_t>(entry + 2) != 0 || ReadLE<uint32_t>(entry + 4) != 0) {
      return Status::InvalidArgument("chunk frame section " +
                                     std::to_string(i) +
                                     " has nonzero reserved fields");
    }
    Section s;
    s.desc.kind = static_cast<SectionKind>(kind);
    s.desc.encoding = static_cast<SectionEncoding>(encoding);
    s.desc.bytes = ReadLE<uint64_t>(entry + 8);
    if (s.desc.bytes > size - offset) {
      return Status::InvalidArgument("chunk frame section " +
                                     std::to_string(i) +
                                     " overruns the buffer");
    }
    s.data = data + offset;
    offset += s.desc.bytes;
    view.sections_.push_back(s);
  }
  if (offset != size) {
    return Status::InvalidArgument("trailing bytes after chunk frame "
                                   "sections");
  }
  if (verify_hash && ComputeFrameHash(data, size) != view.content_hash_) {
    return Status::IOError("chunk frame content hash mismatch (corrupt "
                           "frame)");
  }
  return view;
}

}  // namespace codec
}  // namespace spangle
