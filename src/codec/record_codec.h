#ifndef SPANGLE_CODEC_RECORD_CODEC_H_
#define SPANGLE_CODEC_RECORD_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace spangle {
namespace codec {

/// The record-at-a-time codec: one record's bytes, no framing. The
/// columnar chunk frame (columnar.h) uses it for the kRecords fallback
/// section (types with no columnar split), and the legacy:: partition
/// functions below preserve the pre-frame wire format for the codec
/// ablation bench. This is the machinery that lived in
/// engine/spill_codec.h before the frame refactor; spill_codec.h now
/// re-exports it.

/// Types carrying their own binary codec: AppendTo(std::string*) plus a
/// static FromBytes(data, size, *consumed) returning a Result. Chunk,
/// Bitmask and VecBlock all satisfy this.
template <typename T>
concept HasByteCodec = requires(const T& t, std::string* out, const char* d,
                                size_t n, size_t* c) {
  { t.AppendTo(out) };
  { T::FromBytes(d, n, c).ok() } -> std::convertible_to<bool>;
};

template <typename T>
struct SpillableTrait
    : std::bool_constant<std::is_trivially_copyable_v<T> || HasByteCodec<T>> {
};
template <>
struct SpillableTrait<std::string> : std::true_type {};
template <typename A, typename B>
struct SpillableTrait<std::pair<A, B>>
    : std::bool_constant<SpillableTrait<A>::value && SpillableTrait<B>::value> {
};
template <typename E>
struct SpillableTrait<std::vector<E>> : SpillableTrait<E> {};

/// True when a std::vector<T> partition can be written to a spill file
/// and read back bit-exactly. Storage levels that touch disk require
/// this; for other types they degrade to MEMORY_ONLY (recompute).
template <typename T>
inline constexpr bool kSpillable = SpillableTrait<T>::value;

namespace detail {
template <typename T>
struct IsPair : std::false_type {};
template <typename A, typename B>
struct IsPair<std::pair<A, B>> : std::true_type {};
template <typename T>
struct IsVector : std::false_type {};
template <typename E>
struct IsVector<std::vector<E>> : std::true_type {};
}  // namespace detail

/// Appends one record's binary encoding to `out`. The inverse of
/// Decode<T>; record framing (length prefixes between records) is the
/// caller's job. The if-constexpr ladder must stay in sync with Decode.
template <typename T>
void Encode(const T& v, std::string* out) {
  static_assert(kSpillable<T>, "record type has no spill codec");
  if constexpr (std::is_same_v<T, std::string>) {
    const uint32_t n = static_cast<uint32_t>(v.size());
    out->append(reinterpret_cast<const char*>(&n), sizeof(n));
    out->append(v);
  } else if constexpr (detail::IsPair<T>::value) {
    Encode(v.first, out);
    Encode(v.second, out);
  } else if constexpr (detail::IsVector<T>::value) {
    const uint32_t n = static_cast<uint32_t>(v.size());
    out->append(reinterpret_cast<const char*>(&n), sizeof(n));
    for (const auto& e : v) Encode(e, out);
  } else if constexpr (std::is_trivially_copyable_v<T>) {
    out->append(reinterpret_cast<const char*>(&v), sizeof(T));
  } else {
    v.AppendTo(out);
  }
}

/// Decodes one record from data[0, size); adds the bytes read to
/// *consumed. CHECK-fails on malformed input — callers that handle
/// untrusted bytes (the frame decoder) validate section bounds and the
/// content hash before records are walked.
template <typename T>
T Decode(const char* data, size_t size, size_t* consumed) {
  static_assert(kSpillable<T>, "record type has no spill codec");
  if constexpr (std::is_same_v<T, std::string>) {
    uint32_t n = 0;
    SPANGLE_CHECK_GE(size, sizeof(n)) << "truncated spill record";
    std::memcpy(&n, data, sizeof(n));
    SPANGLE_CHECK_GE(size - sizeof(n), n) << "truncated spill record";
    *consumed += sizeof(n) + n;
    return std::string(data + sizeof(n), n);
  } else if constexpr (detail::IsPair<T>::value) {
    size_t used = 0;
    auto first = Decode<typename T::first_type>(data, size, &used);
    size_t used2 = 0;
    auto second =
        Decode<typename T::second_type>(data + used, size - used, &used2);
    *consumed += used + used2;
    return T(std::move(first), std::move(second));
  } else if constexpr (detail::IsVector<T>::value) {
    uint32_t n = 0;
    SPANGLE_CHECK_GE(size, sizeof(n)) << "truncated spill record";
    std::memcpy(&n, data, sizeof(n));
    size_t used = sizeof(n);
    T out;
    out.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      out.push_back(
          Decode<typename T::value_type>(data + used, size - used, &used));
    }
    *consumed += used;
    return out;
  } else if constexpr (std::is_trivially_copyable_v<T>) {
    SPANGLE_CHECK_GE(size, sizeof(T)) << "truncated spill record";
    T v;
    std::memcpy(&v, data, sizeof(T));
    *consumed += sizeof(T);
    return v;
  } else {
    size_t used = 0;
    auto r = T::FromBytes(data, size, &used);
    SPANGLE_CHECK(r.ok()) << "corrupt spill record: " << r.status().ToString();
    *consumed += used;
    return std::move(*r);
  }
}

/// The pre-frame record-at-a-time partition format, kept verbatim so the
/// codec ablation bench can measure old vs new on identical data. Not
/// used by any engine path anymore.
namespace legacy {

/// uint32 record count, then the records back to back.
template <typename T>
std::string EncodePartition(const std::vector<T>& records) {
  std::string out;
  const uint32_t n = static_cast<uint32_t>(records.size());
  out.append(reinterpret_cast<const char*>(&n), sizeof(n));
  for (const T& rec : records) Encode(rec, &out);
  return out;
}

template <typename T>
std::vector<T> DecodePartition(const char* data, size_t size) {
  uint32_t n = 0;
  SPANGLE_CHECK_GE(size, sizeof(n)) << "truncated partition encoding";
  std::memcpy(&n, data, sizeof(n));
  size_t consumed = sizeof(n);
  std::vector<T> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    out.push_back(Decode<T>(data + consumed, size - consumed, &consumed));
  }
  SPANGLE_CHECK_EQ(consumed, size) << "trailing bytes in partition encoding";
  return out;
}

}  // namespace legacy

}  // namespace codec
}  // namespace spangle

#endif  // SPANGLE_CODEC_RECORD_CODEC_H_
