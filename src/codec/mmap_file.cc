#include "codec/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

namespace spangle {
namespace codec {

Result<MappedFile> MappedFile::Map(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);  // NOLINT(cppcoreguidelines-pro-type-vararg)
  if (fd < 0) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("cannot stat " + path + ": " +
                           std::strerror(err));
  }
  const auto size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    // mmap of length 0 is an error; an empty file is a valid (empty)
    // mapping.
    ::close(fd);
    return MappedFile(nullptr, 0);
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping keeps the file contents reachable after close(2).
  ::close(fd);
  if (addr == MAP_FAILED) {
    return Status::IOError("cannot mmap " + path + ": " +
                           std::strerror(errno));
  }
  return MappedFile(static_cast<const char*>(addr), size);
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      ::munmap(const_cast<char*>(data_), size_);
    }
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
}

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IOError("cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::string bytes(static_cast<size_t>(size), '\0');
  if (size > 0 && !in.read(bytes.data(), size)) {
    return Status::IOError("short read from " + path);
  }
  return bytes;
}

Result<uint64_t> WriteWholeFile(const char* data, size_t size,
                                const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot create " + path);
  out.write(data, static_cast<std::streamsize>(size));
  if (!out) return Status::IOError("write failed: " + path);
  return static_cast<uint64_t>(size);
}

Result<uint64_t> WriteWholeFile(const std::string& bytes,
                                const std::string& path) {
  return WriteWholeFile(bytes.data(), bytes.size(), path);
}

}  // namespace codec
}  // namespace spangle
