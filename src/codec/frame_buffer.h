#ifndef SPANGLE_CODEC_FRAME_BUFFER_H_
#define SPANGLE_CODEC_FRAME_BUFFER_H_

#include <cstddef>
#include <string>
#include <utility>

#include "codec/mmap_file.h"

namespace spangle {
namespace codec {

/// An encoded chunk frame held either as owned heap bytes (fresh off the
/// wire / encoder) or as a file-backed mmap (spill readback). The two
/// cases expose identical data()/size(), so daemon block storage and the
/// RPC fetch path never re-encode or copy — the distinction only matters
/// to BlockManager accounting: owned bytes count against the memory
/// budget, mapped bytes are reported separately (the OS can drop and
/// re-fault them, so evicting a mapped frame frees nothing).
class FrameBuffer {
 public:
  explicit FrameBuffer(std::string owned) : owned_(std::move(owned)) {}
  explicit FrameBuffer(MappedFile mapped)
      : mapped_(std::move(mapped)), is_mapped_(true) {}

  const char* data() const {
    return is_mapped_ ? mapped_.data() : owned_.data();
  }
  size_t size() const {
    return is_mapped_ ? mapped_.size() : owned_.size();
  }
  bool mapped() const { return is_mapped_; }

  /// The bytes as a string: zero-cost move for owned buffers, a copy for
  /// mapped ones (the RPC response path, which must own what it sends).
  std::string ToString() const& { return {data(), size()}; }
  std::string ToString() && {
    return is_mapped_ ? std::string(data(), size()) : std::move(owned_);
  }

 private:
  std::string owned_;
  MappedFile mapped_;
  bool is_mapped_ = false;
};

}  // namespace codec
}  // namespace spangle

#endif  // SPANGLE_CODEC_FRAME_BUFFER_H_
