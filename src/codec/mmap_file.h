#ifndef SPANGLE_CODEC_MMAP_FILE_H_
#define SPANGLE_CODEC_MMAP_FILE_H_

#include <cstddef>
#include <string>
#include <utility>

#include "common/result.h"
#include "common/status.h"

namespace spangle {
namespace codec {

/// Read-only memory mapping of a whole file. Spill-file readback decodes
/// straight out of the mapping — no intermediate copy of the encoded
/// bytes — and a FrameBuffer can keep the mapping alive as a block
/// payload whose bytes are file-backed rather than owned (BlockManager
/// accounts them as mapped, outside the memory budget, because the OS
/// can reclaim them at will).
///
/// Movable, not copyable; unmaps on destruction.
class MappedFile {
 public:
  /// Maps `path` read-only. IOError when the file cannot be opened,
  /// statted, or mapped — callers fall back to the streaming read
  /// (ReadWholeFile), so an mmap-less platform degrades, not breaks.
  static Result<MappedFile> Map(const std::string& path);

  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  MappedFile& operator=(MappedFile&& other) noexcept;
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool valid() const { return data_ != nullptr || size_ == 0; }

 private:
  MappedFile(const char* data, size_t size) : data_(data), size_(size) {}

  const char* data_ = nullptr;
  size_t size_ = 0;
};

/// Streaming fallback: reads the whole file into an owned string.
Result<std::string> ReadWholeFile(const std::string& path);

/// Writes `size` bytes to `path`, truncating; returns the byte count.
Result<uint64_t> WriteWholeFile(const char* data, size_t size,
                                const std::string& path);
Result<uint64_t> WriteWholeFile(const std::string& bytes,
                                const std::string& path);

}  // namespace codec
}  // namespace spangle

#endif  // SPANGLE_CODEC_MMAP_FILE_H_
