#ifndef SPANGLE_CODEC_VARINT_H_
#define SPANGLE_CODEC_VARINT_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace spangle {
namespace codec {

/// LEB128 varints plus zigzag, the integer-key compression primitives of
/// the columnar chunk frame (see chunk_frame.h). Decode never reads past
/// `size` and rejects encodings longer than 10 bytes, so a truncated or
/// corrupt slab surfaces as a decode failure instead of a wild read.

inline constexpr size_t kMaxVarintBytes = 10;

inline void PutVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

/// Encoded size of `v` without materializing it (encoding-choice scans).
inline size_t VarintSize(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Decodes one varint from data[0, size); advances *consumed past it.
/// False on truncation or an over-long (> 10 byte) encoding.
inline bool GetVarint(const char* data, size_t size, uint64_t* v,
                      size_t* consumed) {
  uint64_t result = 0;
  int shift = 0;
  for (size_t i = 0; i < size && i < kMaxVarintBytes; ++i) {
    const auto byte = static_cast<unsigned char>(data[i]);
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      *consumed += i + 1;
      return true;
    }
    shift += 7;
  }
  return false;
}

/// Zigzag: small-magnitude signed deltas (either sign) become small
/// unsigned varints.
inline uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace codec
}  // namespace spangle

#endif  // SPANGLE_CODEC_VARINT_H_
