#ifndef SPANGLE_CODEC_HASH_H_
#define SPANGLE_CODEC_HASH_H_

#include <cstddef>
#include <cstdint>

namespace spangle {
namespace codec {

/// 64-bit content hash (the XXH64 construction): fast enough to run over
/// every encoded shuffle frame, with avalanche good enough that any
/// single-byte wire corruption flips the digest. NOT cryptographic — the
/// content address authenticates nothing, it only identifies bytes and
/// detects accidental corruption.
///
/// `seed` chains two ranges without concatenating them:
/// Hash64(b, nb, Hash64(a, na)) commits to both buffers and their split.
uint64_t Hash64(const void* data, size_t size, uint64_t seed = 0);

}  // namespace codec
}  // namespace spangle

#endif  // SPANGLE_CODEC_HASH_H_
