#ifndef SPANGLE_CODEC_FRAME_FILE_H_
#define SPANGLE_CODEC_FRAME_FILE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "codec/columnar.h"
#include "codec/frame_buffer.h"
#include "codec/mmap_file.h"
#include "common/logging.h"
#include "common/result.h"

namespace spangle {
namespace codec {

/// Spill files ARE chunk frames: one frame per file, identical bytes to
/// the shuffle wire format, so a spilled partition and a shipped
/// partition have the same content address. Readback maps the file and
/// decodes straight from the mapping; when mmap is unavailable it falls
/// back to a streaming read of the same bytes.

/// Reads a frame file's raw bytes, preferring a zero-copy mapping.
inline Result<FrameBuffer> ReadFrameFile(const std::string& path) {
  auto mapped = MappedFile::Map(path);
  if (mapped.ok()) return FrameBuffer(std::move(*mapped));
  auto streamed = ReadWholeFile(path);
  SPANGLE_RETURN_NOT_OK(streamed.status());
  return FrameBuffer(std::move(*streamed));
}

/// Writes one partition to `path` as a chunk frame; returns bytes
/// written. CHECK-fails on I/O errors (parity with the old spill
/// contract: the engine owns its spill dir, failure there is fatal).
template <typename T>
uint64_t WritePartitionFile(const std::vector<T>& records,
                            const std::string& path) {
  const EncodedFrame frame = EncodePartitionFrame(records);
  auto written = WriteWholeFile(frame.bytes, path);
  SPANGLE_CHECK(written.ok()) << "spill write failed: "
                              << written.status().ToString();
  return *written;
}

/// Reads a partition back from a frame file written by WritePartitionFile
/// (or any stored frame — spill and wire bytes are interchangeable).
/// CHECK-fails on a missing/corrupt file: spill files are engine-written
/// local state, so damage there is a bug, not input error.
template <typename T>
std::vector<T> ReadPartitionFile(const std::string& path) {
  auto buf = ReadFrameFile(path);
  SPANGLE_CHECK(buf.ok()) << "cannot read spill file " << path << ": "
                          << buf.status().ToString();
  auto records = DecodePartitionFrame<T>(buf->data(), buf->size());
  SPANGLE_CHECK(records.ok()) << "corrupt spill file " << path << ": "
                              << records.status().ToString();
  return *std::move(records);
}

}  // namespace codec
}  // namespace spangle

#endif  // SPANGLE_CODEC_FRAME_FILE_H_
