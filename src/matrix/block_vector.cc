#include "matrix/block_vector.h"

#include <algorithm>

namespace spangle {

BlockVector BlockVector::FromDense(Context* ctx,
                                   const std::vector<double>& values,
                                   uint64_t block, int num_partitions) {
  SPANGLE_CHECK_GT(block, 0u);
  BlockVector out;
  out.size_ = values.size();
  out.block_ = block;
  const uint64_t n_blocks = out.num_blocks();
  std::vector<std::pair<uint64_t, VecBlock>> records;
  records.reserve(n_blocks);
  for (uint64_t b = 0; b < n_blocks; ++b) {
    const uint64_t begin = b * block;
    const uint64_t end = std::min<uint64_t>(begin + block, values.size());
    VecBlock vb;
    vb.values.assign(values.begin() + begin, values.begin() + end);
    records.emplace_back(b, std::move(vb));
  }
  if (num_partitions <= 0) num_partitions = ctx->default_parallelism();
  auto partitioner =
      std::make_shared<HashPartitioner<uint64_t>>(num_partitions);
  out.blocks_ = ctx->ParallelizePairs<uint64_t, VecBlock>(
      std::move(records), std::move(partitioner));
  return out;
}

BlockVector BlockVector::FromBlocks(uint64_t size, uint64_t block,
                                    bool is_column,
                                    PairRdd<uint64_t, VecBlock> blocks) {
  BlockVector out;
  out.size_ = size;
  out.block_ = block;
  out.is_column_ = is_column;
  out.blocks_ = std::move(blocks);
  return out;
}

BlockVector BlockVector::TransposeMetadata() const {
  BlockVector out = *this;
  out.is_column_ = !is_column_;
  return out;
}

BlockVector BlockVector::TransposePhysical() const {
  // Rewrites every block and forces a repartition — the cost opt2 avoids.
  auto rewritten = blocks_.MapValues([](const VecBlock& b) {
    // A 1xN -> Nx1 layout change copies every slot into a fresh block.
    VecBlock out;
    out.values.resize(b.values.size());
    std::copy(b.values.begin(), b.values.end(), out.values.begin());
    return out;
  });
  auto repartitioned = rewritten.PartitionBy(
      std::make_shared<HashPartitioner<uint64_t>>(blocks_.num_partitions()));
  BlockVector out = *this;
  out.is_column_ = !is_column_;
  out.blocks_ = std::move(repartitioned);
  return out;
}

std::vector<double> BlockVector::ToDense() const {
  std::vector<double> out(size_, 0.0);
  for (const auto& [b, vb] : blocks_.Collect()) {
    const uint64_t begin = b * block_;
    for (size_t i = 0; i < vb.values.size(); ++i) {
      out[begin + i] = vb.values[i];
    }
  }
  return out;
}

Result<BlockVector> BlockVector::AddScaled(const BlockVector& other,
                                           double alpha) const {
  if (size_ != other.size_ || block_ != other.block_) {
    return Status::InvalidArgument("vector shape mismatch in AddScaled");
  }
  auto combined = blocks_.Join(other.blocks_)
                      .MapValues([alpha](const std::pair<VecBlock, VecBlock>&
                                             pair) {
                        VecBlock out = pair.first;
                        for (size_t i = 0; i < out.values.size(); ++i) {
                          out.values[i] += alpha * pair.second.values[i];
                        }
                        return out;
                      });
  BlockVector out = *this;
  out.blocks_ = std::move(combined);
  return out;
}

Result<BlockVector> BlockVector::Hadamard(const BlockVector& other) const {
  if (size_ != other.size_ || block_ != other.block_) {
    return Status::InvalidArgument("vector shape mismatch in Hadamard");
  }
  auto combined =
      blocks_.Join(other.blocks_)
          .MapValues([](const std::pair<VecBlock, VecBlock>& pair) {
            VecBlock out = pair.first;
            for (size_t i = 0; i < out.values.size(); ++i) {
              out.values[i] *= pair.second.values[i];
            }
            return out;
          });
  BlockVector out = *this;
  out.blocks_ = std::move(combined);
  return out;
}

Result<BlockVector> BlockVector::Combine(
    const BlockVector& other, std::function<double(double, double)> fn) const {
  if (size_ != other.size_ || block_ != other.block_) {
    return Status::InvalidArgument("vector shape mismatch in Combine");
  }
  auto combined =
      blocks_.Join(other.blocks_)
          .MapValues([fn = std::move(fn)](
                         const std::pair<VecBlock, VecBlock>& pair) {
            VecBlock out = pair.first;
            for (size_t i = 0; i < out.values.size(); ++i) {
              out.values[i] = fn(out.values[i], pair.second.values[i]);
            }
            return out;
          });
  BlockVector out = *this;
  out.blocks_ = std::move(combined);
  return out;
}

BlockVector BlockVector::Map(std::function<double(double)> fn) const {
  auto mapped = blocks_.MapValues([fn = std::move(fn)](const VecBlock& b) {
    VecBlock out = b;
    for (auto& v : out.values) v = fn(v);
    return out;
  });
  BlockVector out = *this;
  out.blocks_ = std::move(mapped);
  return out;
}

BlockVector BlockVector::MapBlocks(
    std::function<VecBlock(uint64_t, const VecBlock&)> fn) const {
  auto mapped = blocks_.AsRdd().Map(
      [fn = std::move(fn)](const std::pair<uint64_t, VecBlock>& rec) {
        return std::pair<uint64_t, VecBlock>(rec.first,
                                             fn(rec.first, rec.second));
      });
  BlockVector out = *this;
  out.blocks_ =
      PairRdd<uint64_t, VecBlock>(std::move(mapped), blocks_.partitioner());
  return out;
}

double BlockVector::Sum() const {
  return blocks_.AsRdd().Aggregate<double>(
      0.0,
      [](double acc, const std::pair<uint64_t, VecBlock>& rec) {
        for (double v : rec.second.values) acc += v;
        return acc;
      },
      [](double a, double b) { return a + b; });
}

double BlockVector::SquaredNorm() const {
  return blocks_.AsRdd().Aggregate<double>(
      0.0,
      [](double acc, const std::pair<uint64_t, VecBlock>& rec) {
        for (double v : rec.second.values) acc += v * v;
        return acc;
      },
      [](double a, double b) { return a + b; });
}

}  // namespace spangle
