#ifndef SPANGLE_MATRIX_PARTITION_H_
#define SPANGLE_MATRIX_PARTITION_H_

#include <memory>

#include "array/mapper.h"
#include "engine/partitioner.h"

namespace spangle {

/// How a block matrix's chunks are placed across partitions.
///
/// * kHashChunk — hash of the whole ChunkId (default, balanced).
/// * kByRowBlock / kByColBlock — hash of the chunk's row / column block
///   index. When the left operand of a multiply is placed by column block
///   and the right by row block (with equal partition counts), the join on
///   the contraction index is *local* and the multiply runs without
///   shuffling either matrix (paper Sec. VI-A).
enum class PartitionScheme { kHashChunk, kByRowBlock, kByColBlock };

/// ChunkId partitioner implementing the block-aware schemes. `nrb` is the
/// number of row blocks (chunks_along(0)); with the Algorithm-1 id layout,
/// row block = id % nrb and column block = id / nrb.
class BlockPartitioner : public Partitioner<ChunkId> {
 public:
  BlockPartitioner(PartitionScheme scheme, uint64_t nrb, int num_partitions)
      : scheme_(scheme), nrb_(nrb), inner_(num_partitions) {}

  int num_partitions() const override { return inner_.num_partitions(); }

  int PartitionFor(const ChunkId& id) const override {
    switch (scheme_) {
      case PartitionScheme::kHashChunk:
        return inner_.PartitionFor(id);
      case PartitionScheme::kByRowBlock:
        return inner_.PartitionFor(id % nrb_);
      case PartitionScheme::kByColBlock:
        return inner_.PartitionFor(id / nrb_);
    }
    return 0;
  }

  bool Equals(const Partitioner<ChunkId>& other) const override {
    auto* o = dynamic_cast<const BlockPartitioner*>(&other);
    return o != nullptr && o->scheme_ == scheme_ && o->nrb_ == nrb_ &&
           o->num_partitions() == num_partitions();
  }

  PartitionScheme scheme() const { return scheme_; }

 private:
  PartitionScheme scheme_;
  uint64_t nrb_;
  HashPartitioner<uint64_t> inner_;
};

}  // namespace spangle

#endif  // SPANGLE_MATRIX_PARTITION_H_
