#ifndef SPANGLE_MATRIX_BLOCK_MATRIX_H_
#define SPANGLE_MATRIX_BLOCK_MATRIX_H_

#include <memory>
#include <unordered_set>
#include <vector>

#include "array/array_rdd.h"
#include "matrix/block_vector.h"
#include "matrix/partition.h"

namespace spangle {

/// One matrix entry (COO triple) for ingest.
struct MatrixEntry {
  uint64_t row = 0;
  uint64_t col = 0;
  double value = 0;
};

/// Options for Multiply. Local join fires automatically when the operand
/// placement allows it; `force_shuffle_join` disables the optimization so
/// benches can measure what it saves.
struct MatMulOptions {
  bool force_shuffle_join = false;
};

/// A distributed matrix built on ArrayRdd: two dimensions (row, col)
/// chunked into square `block x block` tiles, each tile a payload +
/// bitmask chunk. Zero entries are *invalid* cells (paper Sec. IV-A: "in
/// matrix operations, zero is treated as invalid"), so sparse matrices
/// compress and multiplications skip zero operands via the bitmask.
class BlockMatrix {
 public:
  BlockMatrix() = default;

  /// Builds from COO entries. `scheme` chooses chunk placement; see
  /// PartitionScheme for the multiply-local-join interaction.
  static Result<BlockMatrix> FromEntries(
      Context* ctx, uint64_t rows, uint64_t cols, uint64_t block,
      const std::vector<MatrixEntry>& entries,
      ModePolicy policy = ModePolicy::Auto(),
      PartitionScheme scheme = PartitionScheme::kHashChunk,
      int num_partitions = 0);

  uint64_t rows() const { return rows_; }
  uint64_t cols() const { return cols_; }
  uint64_t block() const { return block_; }
  uint64_t num_row_blocks() const { return (rows_ + block_ - 1) / block_; }
  uint64_t num_col_blocks() const { return (cols_ + block_ - 1) / block_; }
  Context* ctx() const { return array_.ctx(); }

  const ArrayRdd& array() const { return array_; }
  ArrayRdd& array() { return array_; }
  PartitionScheme scheme() const { return scheme_; }

  BlockMatrix& Cache(StorageLevel level = StorageLevel::kMemoryOnly) {
    array_.Cache(level);
    return *this;
  }

  /// Staged physical plan for running `action` over the tiles (see
  /// Rdd::Explain): shows which shuffles an operation would run — e.g.
  /// co-partitioned Add plans zero pending shuffle stages while a
  /// forced-shuffle Multiply plans two independent scatter stages.
  std::string Explain(const std::string& action = "collect") const {
    return array_.Explain(action);
  }

  /// EXECUTES `action` over the tiles and returns the plan annotated
  /// with actuals (see Rdd::ExplainAnalyze): per-node tile counts, bytes,
  /// tile modes — e.g. how many partial products a Multiply reduced.
  AnalyzedPlan ExplainAnalyzePlan(
      const std::string& action = "collect") const {
    return array_.ExplainAnalyzePlan(action);
  }
  std::string ExplainAnalyze(const std::string& action = "collect") const {
    return array_.ExplainAnalyze(action);
  }

  /// Number of stored (non-zero) entries.
  uint64_t NumNonZero() const { return array_.CountValid(); }

  /// In-memory footprint of all tiles.
  size_t MemoryBytes() const { return array_.MemoryBytes(); }

  /// Entry (r, c); 0.0 when not stored.
  double Get(uint64_t r, uint64_t c) const;

  /// Every stored entry multiplied by `factor` (embarrassingly parallel).
  BlockMatrix Scale(double factor) const;

  /// sqrt(sum of squared entries).
  double FrobeniusNorm() const;

  /// Sum of diagonal entries (square matrices).
  Result<double> Trace() const;

  /// Gathers to a dense row-major buffer (tests/small matrices only).
  std::vector<double> ToDense() const;

  /// Element-wise sum; tiles join with cogroup so one-sided tiles pass
  /// through. Embarrassingly parallel when co-partitioned (no shuffle).
  Result<BlockMatrix> Add(const BlockMatrix& other) const;

  /// this - other.
  Result<BlockMatrix> Subtract(const BlockMatrix& other) const;

  /// Element-wise (Hadamard) product: the bitwise AND of the two tiles'
  /// bitmasks prunes every pair with a zero operand before any multiply
  /// (paper Sec. IV-A / Fig. 5).
  Result<BlockMatrix> Hadamard(const BlockMatrix& other) const;

  /// Matrix product (scatter/gather): tiles join on the contraction block
  /// index, partial tile products reduce by output position. When `this`
  /// is placed kByColBlock and `other` kByRowBlock with equal partition
  /// counts, the join is local and neither matrix shuffles (Sec. VI-A).
  Result<BlockMatrix> Multiply(const BlockMatrix& other,
                               const MatMulOptions& options = {}) const;

  /// M x v (column vector in, column vector out).
  Result<BlockVector> MultiplyVector(const BlockVector& v) const;

  /// vT x M (row vector in, row vector out). Never transposes the matrix;
  /// with a metadata-transposed vector this is the opt1 path of Eq. 3.
  Result<BlockVector> LeftMultiplyVector(const BlockVector& v) const;

  /// Narrow row-band selection: keeps only tiles whose row block index is
  /// in `keep`. With kByRowBlock placement this filters each partition
  /// locally — the shuffle-free mini-batch sampling that Eq. 2's
  /// reversible chunk ids enable (paper Sec. VI-C).
  BlockMatrix FilterRowBlocks(
      const std::shared_ptr<const std::unordered_set<uint64_t>>& keep) const;

  /// Full physical transpose (expensive: every tile rewritten+shuffled).
  BlockMatrix Transpose() const;

  /// MT x M via physical transpose then multiply — the expensive pattern
  /// most systems in Fig. 10 struggle with.
  Result<BlockMatrix> TransposeSelfMultiply(
      const MatMulOptions& options = {}) const;

 private:
  static ArrayMetadata MakeMeta(uint64_t rows, uint64_t cols, uint64_t block);

  uint64_t rows_ = 0;
  uint64_t cols_ = 0;
  uint64_t block_ = 0;
  PartitionScheme scheme_ = PartitionScheme::kHashChunk;
  ArrayRdd array_;
};

/// Multiplies two tiles: out[r, c] += a[r, j] * b[j, c], skipping invalid
/// (zero) operands via the bitmasks. `bs` is the block edge length. When
/// the left tile is sparse enough that an offset array beats its bitmask
/// (OffsetArray::PrefersOffsets), iteration goes through offsets — the
/// static-matrix conversion of paper Sec. V-A4. Exposed for benches.
std::vector<std::pair<uint32_t, double>> MultiplyTiles(const Chunk& a,
                                                       const Chunk& b,
                                                       uint32_t bs);

}  // namespace spangle

#endif  // SPANGLE_MATRIX_BLOCK_MATRIX_H_
