#ifndef SPANGLE_MATRIX_MASK_MATRIX_H_
#define SPANGLE_MATRIX_MASK_MATRIX_H_

#include <utility>
#include <vector>

#include "array/mapper.h"
#include "bitmask/bitmask.h"
#include "bitmask/hierarchical_bitmask.h"
#include "matrix/block_vector.h"
#include "matrix/partition.h"

namespace spangle {

/// One tile of a bitmask-only matrix: either a flat bitmask (sparse mode)
/// or a hierarchical one (super-sparse mode, paper Fig. 11's LiveJournal
/// configuration). No payload at all — a set bit *is* the value 1.
struct MaskTile {
  bool hierarchical = false;
  Bitmask flat;
  HierarchicalBitmask h;

  uint64_t CountAll() const {
    return hierarchical ? h.CountAll() : flat.CountAll();
  }
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    if (hierarchical) {
      h.ForEachSetBit(std::forward<Fn>(fn));
    } else {
      flat.ForEachSetBit(std::forward<Fn>(fn));
    }
  }
  size_t MemoryBytes() const {
    return hierarchical ? h.SizeBytes() : flat.SizeBytes();
  }
  size_t SerializedBytes() const { return MemoryBytes(); }
};

/// An unweighted square matrix stored purely as bitmasks (paper Sec.
/// VI-B): the adjacency matrix A' in the PageRank decomposition
/// A = A' . diag(w). Each edge costs one bit instead of an eight-byte
/// value, which is what lets the matrix formulation of PageRank compete
/// with graph engines.
class MaskMatrix {
 public:
  MaskMatrix() = default;

  /// Builds an n x n matrix from (row, col) = (dst, src) pairs. Mode: each
  /// tile independently picks flat vs hierarchical by density unless
  /// `force_hierarchical`; `scheme` as in BlockMatrix.
  static Result<MaskMatrix> FromEdges(
      Context* ctx, uint64_t n, uint64_t block,
      const std::vector<std::pair<uint64_t, uint64_t>>& edges,
      bool force_hierarchical = false,
      PartitionScheme scheme = PartitionScheme::kHashChunk,
      int num_partitions = 0);

  uint64_t n() const { return n_; }
  uint64_t block() const { return block_; }
  uint64_t num_blocks_1d() const { return (n_ + block_ - 1) / block_; }
  Context* ctx() const { return tiles_.ctx(); }
  const PairRdd<ChunkId, MaskTile>& tiles() const { return tiles_; }

  MaskMatrix& Cache(StorageLevel level = StorageLevel::kMemoryOnly) {
    tiles_.Cache(level);
    return *this;
  }

  uint64_t NumEdges() const;
  size_t MemoryBytes() const;

  /// A' . v — every set bit (r, c) contributes v[c] to out[r]. The inner
  /// loop is pure popcount-style bit iteration; no multiplies at all for
  /// the matrix side.
  Result<BlockVector> MultiplyVector(const BlockVector& v) const;

  /// Out-degree of every column (number of set bits per column), used to
  /// build the PageRank weight vector w.
  std::vector<uint64_t> ColumnDegrees() const;

 private:
  uint64_t n_ = 0;
  uint64_t block_ = 0;
  PairRdd<ChunkId, MaskTile> tiles_;
};

}  // namespace spangle

#endif  // SPANGLE_MATRIX_MASK_MATRIX_H_
