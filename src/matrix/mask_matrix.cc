#include "matrix/mask_matrix.h"

#include <unordered_map>

namespace spangle {

Result<MaskMatrix> MaskMatrix::FromEdges(
    Context* ctx, uint64_t n, uint64_t block,
    const std::vector<std::pair<uint64_t, uint64_t>>& edges,
    bool force_hierarchical, PartitionScheme scheme, int num_partitions) {
  if (n == 0 || block == 0) {
    return Status::InvalidArgument("matrix dimensions must be positive");
  }
  if (block * block > (uint64_t{1} << 32)) {
    return Status::InvalidArgument("tile exceeds 2^32 cells");
  }
  MaskMatrix out;
  out.n_ = n;
  out.block_ = block;
  const uint64_t nb = out.num_blocks_1d();
  const uint32_t cells = static_cast<uint32_t>(block * block);
  std::unordered_map<ChunkId, Bitmask> grouped;
  for (const auto& [dst, src] : edges) {
    if (dst >= n || src >= n) return Status::OutOfRange("edge out of range");
    const uint64_t rb = dst / block;
    const uint64_t cb = src / block;
    const ChunkId id = rb + cb * nb;
    auto [it, inserted] = grouped.try_emplace(id, cells);
    it->second.Set(static_cast<uint32_t>((dst % block) * block +
                                         (src % block)));
  }
  std::vector<std::pair<ChunkId, MaskTile>> records;
  records.reserve(grouped.size());
  for (auto& [id, mask] : grouped) {
    MaskTile tile;
    // Hierarchical when the tile is so empty that dropping all-zero mask
    // words pays (same rule as Chunk::ChooseMode's super-sparse bound).
    tile.hierarchical =
        force_hierarchical || mask.CountAll() * 64 < cells;
    if (tile.hierarchical) {
      tile.h = HierarchicalBitmask::FromBitmask(mask);
    } else {
      mask.BuildMilestones();
      tile.flat = std::move(mask);
    }
    records.emplace_back(id, std::move(tile));
  }
  if (num_partitions <= 0) num_partitions = ctx->default_parallelism();
  auto partitioner =
      std::make_shared<BlockPartitioner>(scheme, nb, num_partitions);
  out.tiles_ = ctx->ParallelizePairs<ChunkId, MaskTile>(std::move(records),
                                                        std::move(partitioner));
  return out;
}

uint64_t MaskMatrix::NumEdges() const {
  return tiles_.AsRdd().Aggregate<uint64_t>(
      0,
      [](uint64_t acc, const std::pair<ChunkId, MaskTile>& rec) {
        return acc + rec.second.CountAll();
      },
      [](uint64_t a, uint64_t b) { return a + b; });
}

size_t MaskMatrix::MemoryBytes() const {
  return tiles_.AsRdd().Aggregate<size_t>(
      0,
      [](size_t acc, const std::pair<ChunkId, MaskTile>& rec) {
        return acc + rec.second.MemoryBytes();
      },
      [](size_t a, size_t b) { return a + b; });
}

Result<BlockVector> MaskMatrix::MultiplyVector(const BlockVector& v) const {
  if (v.size() != n_) {
    return Status::InvalidArgument("A' x v dimension mismatch");
  }
  if (v.block() != block_) {
    return Status::InvalidArgument("vector block size mismatch");
  }
  const uint64_t nb = num_blocks_1d();
  const uint32_t bs = static_cast<uint32_t>(block_);
  using Keyed = std::pair<uint64_t, std::pair<uint64_t, MaskTile>>;
  auto by_j = ToPair<uint64_t, std::pair<uint64_t, MaskTile>>(
      tiles_.AsRdd().Map([nb](const std::pair<ChunkId, MaskTile>& rec) {
        return Keyed{rec.first / nb, {rec.first % nb, rec.second}};
      }));
  const uint64_t n = n_;
  const uint64_t block = block_;
  auto partials = ToPair<uint64_t, VecBlock>(
      by_j.Join(v.blocks())
          .AsRdd()
          .Map([bs, n, block](
                   const std::pair<uint64_t,
                                   std::pair<std::pair<uint64_t, MaskTile>,
                                             VecBlock>>& rec) {
            const auto& [rb, tile] = rec.second.first;
            const VecBlock& vb = rec.second.second;
            VecBlock out;
            out.values.assign(std::min<uint64_t>(block, n - rb * block),
                              0.0);
            tile.ForEachSetBit([&](size_t off) {
              const uint32_t r = static_cast<uint32_t>(off) / bs;
              const uint32_t c = static_cast<uint32_t>(off) % bs;
              if (c < vb.values.size() && r < out.values.size()) {
                out.values[r] += vb.values[c];
              }
            });
            return std::pair<uint64_t, VecBlock>(rb, std::move(out));
          }));
  auto reduced =
      partials.ReduceByKey([](const VecBlock& a, const VecBlock& b) {
        VecBlock out = a;
        for (size_t i = 0; i < out.values.size(); ++i) {
          out.values[i] += b.values[i];
        }
        return out;
      });
  std::vector<double> zeros(n_, 0.0);
  BlockVector base = BlockVector::FromDense(ctx(), zeros, block_,
                                            v.blocks().num_partitions());
  auto merged = base.blocks().CoGroup(reduced).MapValues(
      [](const std::pair<std::vector<VecBlock>, std::vector<VecBlock>>&
             sides) {
        VecBlock blk = sides.first.front();
        for (const VecBlock& add : sides.second) {
          for (size_t i = 0; i < blk.values.size(); ++i) {
            blk.values[i] += add.values[i];
          }
        }
        return blk;
      });
  return BlockVector::FromBlocks(n_, block_, /*is_column=*/true,
                                 std::move(merged));
}

std::vector<uint64_t> MaskMatrix::ColumnDegrees() const {
  const uint64_t nb = num_blocks_1d();
  const uint32_t bs = static_cast<uint32_t>(block_);
  auto per_tile = tiles_.AsRdd().Map(
      [nb, bs](const std::pair<ChunkId, MaskTile>& rec) {
        const uint64_t cb = rec.first / nb;
        std::vector<uint64_t> counts(bs, 0);
        rec.second.ForEachSetBit(
            [&](size_t off) { ++counts[static_cast<uint32_t>(off) % bs]; });
        return std::make_pair(cb, std::move(counts));
      });
  std::vector<uint64_t> degrees(n_, 0);
  for (const auto& [cb, counts] : per_tile.Collect()) {
    const uint64_t base = cb * block_;
    for (uint32_t c = 0; c < bs && base + c < n_; ++c) {
      degrees[base + c] += counts[c];
    }
  }
  return degrees;
}

}  // namespace spangle
