#ifndef SPANGLE_MATRIX_BLOCK_VECTOR_H_
#define SPANGLE_MATRIX_BLOCK_VECTOR_H_

#include <cstring>
#include <functional>
#include <vector>

#include "common/result.h"
#include "engine/engine.h"

namespace spangle {

/// One dense block of a distributed vector.
struct VecBlock {
  std::vector<double> values;

  size_t SerializedBytes() const {
    return values.size() * sizeof(double) + sizeof(uint32_t);
  }

  /// Binary codec for the engine's spill path (MEMORY_AND_DISK).
  void AppendTo(std::string* out) const {
    const uint32_t n = static_cast<uint32_t>(values.size());
    out->append(reinterpret_cast<const char*>(&n), sizeof(n));
    out->append(reinterpret_cast<const char*>(values.data()),
                values.size() * sizeof(double));
  }
  static Result<VecBlock> FromBytes(const char* data, size_t size,
                                    size_t* consumed) {
    uint32_t n = 0;
    if (size < sizeof(n)) return Status::InvalidArgument("truncated block");
    std::memcpy(&n, data, sizeof(n));
    if (size - sizeof(n) < n * sizeof(double)) {
      return Status::InvalidArgument("truncated block values");
    }
    VecBlock b;
    b.values.resize(n);
    std::memcpy(b.values.data(), data + sizeof(n), n * sizeof(double));
    *consumed += sizeof(n) + n * sizeof(double);
    return b;
  }
};

/// A distributed dense vector, blocked to align with BlockMatrix /
/// MaskMatrix block boundaries (block index = key). Vectors in the ML
/// algorithms (rank vector, model weights) are dense and small relative
/// to the matrices, so blocks store every slot.
///
/// Orientation (row vs column) is *metadata only*: TransposeMetadata()
/// flips a flag without touching any payload — the opt2 optimization of
/// paper Sec. VI-C. TransposePhysical() rebuilds the blocks through a
/// shuffle and exists to quantify what opt2 saves (Fig. 12b).
class BlockVector {
 public:
  BlockVector() = default;

  /// Distributes `values` in blocks of `block` slots over `num_partitions`.
  static BlockVector FromDense(Context* ctx, const std::vector<double>& values,
                               uint64_t block, int num_partitions = 0);

  /// Wraps an existing distributed block collection (keys = block index).
  static BlockVector FromBlocks(uint64_t size, uint64_t block, bool is_column,
                                PairRdd<uint64_t, VecBlock> blocks);

  uint64_t size() const { return size_; }
  uint64_t block() const { return block_; }
  uint64_t num_blocks() const { return (size_ + block_ - 1) / block_; }
  bool is_column() const { return is_column_; }
  Context* ctx() const { return blocks_.ctx(); }

  const PairRdd<uint64_t, VecBlock>& blocks() const { return blocks_; }
  PairRdd<uint64_t, VecBlock>& blocks() { return blocks_; }

  BlockVector& Cache(StorageLevel level = StorageLevel::kMemoryOnly) {
    blocks_.Cache(level);
    return *this;
  }

  /// O(1) transpose: replaces the description, not the physical layout.
  BlockVector TransposeMetadata() const;

  /// Full physical transpose: every block is rewritten and re-shuffled.
  /// Numerically identical to TransposeMetadata; exists as the unoptimized
  /// baseline for the Fig. 12b ablation.
  BlockVector TransposePhysical() const;

  /// Gathers the vector to the driver.
  std::vector<double> ToDense() const;

  /// this + alpha * other (element-wise); blocks join locally when both
  /// vectors share a partitioner.
  Result<BlockVector> AddScaled(const BlockVector& other, double alpha) const;

  /// Element-wise (Hadamard) product.
  Result<BlockVector> Hadamard(const BlockVector& other) const;

  /// General element-wise combination: out[i] = fn(this[i], other[i]).
  Result<BlockVector> Combine(const BlockVector& other,
                              std::function<double(double, double)> fn) const;

  /// Applies fn to every slot.
  BlockVector Map(std::function<double(double)> fn) const;

  /// Applies fn(block_index, block) to every block; fn may rewrite the
  /// block wholesale (e.g. zero out unsampled row blocks in SGD).
  BlockVector MapBlocks(
      std::function<VecBlock(uint64_t, const VecBlock&)> fn) const;

  /// Sum of all slots.
  double Sum() const;

  /// Squared L2 norm.
  double SquaredNorm() const;

 private:
  uint64_t size_ = 0;
  uint64_t block_ = 0;
  bool is_column_ = true;
  PairRdd<uint64_t, VecBlock> blocks_;
};

}  // namespace spangle

#endif  // SPANGLE_MATRIX_BLOCK_VECTOR_H_
