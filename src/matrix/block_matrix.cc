#include "matrix/block_matrix.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace spangle {

namespace {

/// Partial product of one tile pair, addressed by output tile id.
/// Cells are offset-sorted; merging is a sorted merge-add.
struct TilePartial {
  std::vector<std::pair<uint32_t, double>> cells;

  size_t SerializedBytes() const {
    return cells.size() * (sizeof(uint32_t) + sizeof(double));
  }
};

TilePartial MergePartials(const TilePartial& a, const TilePartial& b) {
  TilePartial out;
  out.cells.reserve(a.cells.size() + b.cells.size());
  size_t i = 0, j = 0;
  while (i < a.cells.size() && j < b.cells.size()) {
    if (a.cells[i].first < b.cells[j].first) {
      out.cells.push_back(a.cells[i++]);
    } else if (b.cells[j].first < a.cells[i].first) {
      out.cells.push_back(b.cells[j++]);
    } else {
      out.cells.emplace_back(a.cells[i].first,
                             a.cells[i].second + b.cells[j].second);
      ++i;
      ++j;
    }
  }
  while (i < a.cells.size()) out.cells.push_back(a.cells[i++]);
  while (j < b.cells.size()) out.cells.push_back(b.cells[j++]);
  return out;
}

Chunk TileFromSortedCells(uint32_t cells_per_tile,
                          std::vector<std::pair<uint32_t, double>> cells) {
  const ChunkMode mode = Chunk::ChooseMode(cells_per_tile, cells.size());
  return Chunk::FromCells(cells_per_tile, std::move(cells), mode);
}

}  // namespace

std::vector<std::pair<uint32_t, double>> MultiplyTiles(const Chunk& a,
                                                       const Chunk& b,
                                                       uint32_t bs) {
  // Index the right tile by row so each left cell (r, j) streams through
  // row j of b. Invalid (zero) cells never appear: the bitmask iteration
  // is the "skip the pair when either operand is zero" rule of Fig. 5.
  std::vector<std::vector<std::pair<uint32_t, double>>> b_rows(bs);
  b.ForEachValid([&](uint32_t off, double v) {
    b_rows[off / bs].emplace_back(off % bs, v);
  });
  // Very sparse tile pairs accumulate into a hash map; denser ones into a
  // dense buffer with a touched-bitmask (avoids allocating bs*bs doubles
  // for a handful of products).
  const uint64_t product_bound = a.num_valid() * b.num_valid();
  if (product_bound * 8 < static_cast<uint64_t>(bs) * bs) {
    std::unordered_map<uint32_t, double> acc;
    a.ForEachValid([&](uint32_t off, double av) {
      const uint32_t base = (off / bs) * bs;
      for (const auto& [c, bv] : b_rows[off % bs]) {
        acc[base + c] += av * bv;
      }
    });
    std::vector<std::pair<uint32_t, double>> out(acc.begin(), acc.end());
    std::sort(out.begin(), out.end());
    return out;
  }
  std::vector<double> acc(static_cast<size_t>(bs) * bs, 0.0);
  Bitmask touched(static_cast<size_t>(bs) * bs);
  a.ForEachValid([&](uint32_t off, double av) {
    const uint32_t r = off / bs;
    const uint32_t j = off % bs;
    const uint32_t base = r * bs;
    for (const auto& [c, bv] : b_rows[j]) {
      acc[base + c] += av * bv;
      touched.Set(base + c);
    }
  });
  std::vector<std::pair<uint32_t, double>> out;
  out.reserve(touched.CountAll());
  touched.ForEachSetBit([&](size_t off) {
    out.emplace_back(static_cast<uint32_t>(off), acc[off]);
  });
  return out;
}

ArrayMetadata BlockMatrix::MakeMeta(uint64_t rows, uint64_t cols,
                                    uint64_t block) {
  return ArrayMetadata({{"row", 0, rows, block, 0},
                        {"col", 0, cols, block, 0}});
}

Result<BlockMatrix> BlockMatrix::FromEntries(
    Context* ctx, uint64_t rows, uint64_t cols, uint64_t block,
    const std::vector<MatrixEntry>& entries, ModePolicy policy,
    PartitionScheme scheme, int num_partitions) {
  if (rows == 0 || cols == 0 || block == 0) {
    return Status::InvalidArgument("matrix dimensions must be positive");
  }
  if (block * block > (uint64_t{1} << 32)) {
    return Status::InvalidArgument("tile exceeds 2^32 cells");
  }
  BlockMatrix out;
  out.rows_ = rows;
  out.cols_ = cols;
  out.block_ = block;
  out.scheme_ = scheme;
  const ArrayMetadata meta = MakeMeta(rows, cols, block);
  Mapper mapper(meta);
  std::unordered_map<ChunkId, std::vector<std::pair<uint32_t, double>>>
      grouped;
  for (const auto& e : entries) {
    if (e.row >= rows || e.col >= cols) {
      return Status::OutOfRange("matrix entry outside bounds");
    }
    if (e.value == 0.0) continue;  // zero entries are not stored
    const Coords pos{static_cast<int64_t>(e.row),
                     static_cast<int64_t>(e.col)};
    grouped[mapper.ChunkIdFromCoords(pos)].emplace_back(
        mapper.LocalOffset(pos), e.value);
  }
  const uint32_t cpt = mapper.cells_per_chunk();
  std::vector<std::pair<ChunkId, Chunk>> records;
  records.reserve(grouped.size());
  for (auto& [id, cells] : grouped) {
    const ChunkMode mode = policy.fixed.has_value()
                               ? *policy.fixed
                               : Chunk::ChooseMode(cpt, cells.size());
    records.emplace_back(id, Chunk::FromCells(cpt, std::move(cells), mode));
  }
  if (num_partitions <= 0) num_partitions = ctx->default_parallelism();
  auto partitioner = std::make_shared<BlockPartitioner>(
      scheme, meta.chunks_along(0), num_partitions);
  auto pairs = ctx->ParallelizePairs<ChunkId, Chunk>(std::move(records),
                                                     std::move(partitioner));
  out.array_ = ArrayRdd(meta, std::move(pairs));
  return out;
}

double BlockMatrix::Get(uint64_t r, uint64_t c) const {
  auto result = array_.GetCell(
      {static_cast<int64_t>(r), static_cast<int64_t>(c)});
  return result.ok() ? *result : 0.0;
}

BlockMatrix BlockMatrix::Scale(double factor) const {
  BlockMatrix out = *this;
  out.array_ = array_.MapValues([factor](double v) { return v * factor; });
  return out;
}

double BlockMatrix::FrobeniusNorm() const {
  const double total = array_.chunks().AsRdd().Aggregate<double>(
      0.0,
      [](double acc, const std::pair<ChunkId, Chunk>& rec) {
        rec.second.ForEachValid([&](uint32_t, double v) { acc += v * v; });
        return acc;
      },
      [](double a, double b) { return a + b; });
  return std::sqrt(total);
}

Result<double> BlockMatrix::Trace() const {
  if (rows_ != cols_) {
    return Status::InvalidArgument("trace of a non-square matrix");
  }
  const uint64_t nrb = num_row_blocks();
  const uint32_t bs = static_cast<uint32_t>(block_);
  // Only diagonal tiles contribute.
  return array_.chunks().AsRdd().Aggregate<double>(
      0.0,
      [nrb, bs](double acc, const std::pair<ChunkId, Chunk>& rec) {
        if (rec.first % nrb != rec.first / nrb) return acc;
        rec.second.ForEachValid([&](uint32_t off, double v) {
          if (off / bs == off % bs) acc += v;
        });
        return acc;
      },
      [](double a, double b) { return a + b; });
}

std::vector<double> BlockMatrix::ToDense() const {
  std::vector<double> out(rows_ * cols_, 0.0);
  for (const auto& cell : array_.CollectCells()) {
    out[static_cast<uint64_t>(cell.pos[0]) * cols_ +
        static_cast<uint64_t>(cell.pos[1])] = cell.value;
  }
  return out;
}

namespace {

/// Element-wise combine of two co-keyed tile RDDs with pass-through for
/// one-sided tiles. scale_b = -1 gives subtraction.
Result<ArrayRdd> CombineTiles(const BlockMatrix& a, const BlockMatrix& b,
                              double scale_b) {
  auto grouped = a.array().chunks().CoGroup(b.array().chunks());
  const uint32_t cpt =
      static_cast<uint32_t>(a.array().metadata().cells_per_chunk());
  auto combined = grouped.MapValues(
      [cpt, scale_b](
          const std::pair<std::vector<Chunk>, std::vector<Chunk>>& sides) {
        std::unordered_map<uint32_t, double> acc;
        for (const Chunk& t : sides.first) {
          t.ForEachValid([&](uint32_t off, double v) { acc[off] += v; });
        }
        for (const Chunk& t : sides.second) {
          t.ForEachValid(
              [&](uint32_t off, double v) { acc[off] += scale_b * v; });
        }
        std::vector<std::pair<uint32_t, double>> cells;
        cells.reserve(acc.size());
        for (const auto& [off, v] : acc) {
          if (v != 0.0) cells.emplace_back(off, v);
        }
        std::sort(cells.begin(), cells.end());
        return TileFromSortedCells(cpt, std::move(cells));
      });
  auto nonempty = combined.Filter([](const std::pair<ChunkId, Chunk>& rec) {
    return rec.second.num_valid() > 0;
  });
  return ArrayRdd(a.array().metadata(),
                  PairRdd<ChunkId, Chunk>(nonempty.AsRdd(),
                                          nonempty.partitioner()));
}

}  // namespace

Result<BlockMatrix> BlockMatrix::Add(const BlockMatrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_ || block_ != other.block_) {
    return Status::InvalidArgument("matrix shape mismatch in Add");
  }
  BlockMatrix out = *this;
  SPANGLE_ASSIGN_OR_RETURN(out.array_, CombineTiles(*this, other, 1.0));
  return out;
}

Result<BlockMatrix> BlockMatrix::Subtract(const BlockMatrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_ || block_ != other.block_) {
    return Status::InvalidArgument("matrix shape mismatch in Subtract");
  }
  BlockMatrix out = *this;
  SPANGLE_ASSIGN_OR_RETURN(out.array_, CombineTiles(*this, other, -1.0));
  return out;
}

Result<BlockMatrix> BlockMatrix::Hadamard(const BlockMatrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_ || block_ != other.block_) {
    return Status::InvalidArgument("matrix shape mismatch in Hadamard");
  }
  const uint32_t cpt =
      static_cast<uint32_t>(array_.metadata().cells_per_chunk());
  // Inner join: a tile missing on either side contributes nothing.
  auto joined = array_.chunks().Join(other.array().chunks());
  auto combined = joined.MapValues(
      [cpt](const std::pair<Chunk, Chunk>& tiles) {
        // Bitwise AND of the two bitmasks selects exactly the cell pairs
        // where both operands are non-zero (Sec. IV-A).
        Bitmask both = tiles.first.FlatMask();
        both.AndWith(tiles.second.FlatMask());
        std::vector<std::pair<uint32_t, double>> cells;
        cells.reserve(both.CountAll());
        both.ForEachSetBit([&](size_t off) {
          const uint32_t o = static_cast<uint32_t>(off);
          cells.emplace_back(o, tiles.first.Value(o) * tiles.second.Value(o));
        });
        return TileFromSortedCells(cpt, std::move(cells));
      });
  auto nonempty = combined.Filter([](const std::pair<ChunkId, Chunk>& rec) {
    return rec.second.num_valid() > 0;
  });
  BlockMatrix out = *this;
  out.array_ = ArrayRdd(array_.metadata(),
                        PairRdd<ChunkId, Chunk>(nonempty.AsRdd(),
                                                nonempty.partitioner()));
  return out;
}

Result<BlockMatrix> BlockMatrix::Multiply(const BlockMatrix& other,
                                          const MatMulOptions& options) const {
  if (cols_ != other.rows_) {
    return Status::InvalidArgument("inner dimensions differ in Multiply");
  }
  if (block_ != other.block_) {
    return Status::InvalidArgument("operands must share a block size");
  }
  Context* ctx = this->ctx();
  const uint64_t nrb_a = num_row_blocks();
  const uint64_t nrb_b = other.num_row_blocks();
  const uint32_t bs = static_cast<uint32_t>(block_);

  // Scatter: key the left matrix by its column block (the contraction
  // index j) and the right by its row block.
  using Keyed = std::pair<uint64_t, std::pair<uint64_t, Chunk>>;
  auto a_by_j = ToPair<uint64_t, std::pair<uint64_t, Chunk>>(
      array_.chunks().AsRdd().Map(
          [nrb_a](const std::pair<ChunkId, Chunk>& rec) {
            return Keyed{rec.first / nrb_a, {rec.first % nrb_a, rec.second}};
          }));
  auto b_by_j = ToPair<uint64_t, std::pair<uint64_t, Chunk>>(
      other.array().chunks().AsRdd().Map(
          [nrb_b](const std::pair<ChunkId, Chunk>& rec) {
            return Keyed{rec.first % nrb_b, {rec.first / nrb_b, rec.second}};
          }));

  // Local join (Sec. VI-A): when the left matrix is placed by column
  // block and the right by row block with equal partition counts, record
  // placement is already a function of j, so the join needs no shuffle.
  const bool local_ok =
      !options.force_shuffle_join &&
      scheme_ == PartitionScheme::kByColBlock &&
      other.scheme() == PartitionScheme::kByRowBlock &&
      array_.chunks().num_partitions() ==
          other.array().chunks().num_partitions();
  if (local_ok) {
    auto p = std::make_shared<HashPartitioner<uint64_t>>(
        array_.chunks().num_partitions());
    a_by_j = ToPair<uint64_t, std::pair<uint64_t, Chunk>>(a_by_j.AsRdd(), p);
    b_by_j = ToPair<uint64_t, std::pair<uint64_t, Chunk>>(b_by_j.AsRdd(), p);
  }

  auto joined = a_by_j.Join(b_by_j);
  const uint64_t out_nrb = nrb_a;
  // Gather: tile partial products reduce onto the output tile id.
  auto partials = ToPair<ChunkId, TilePartial>(joined.AsRdd().Map(
      [bs, out_nrb](
          const std::pair<uint64_t,
                          std::pair<std::pair<uint64_t, Chunk>,
                                    std::pair<uint64_t, Chunk>>>& rec) {
        const auto& [rb, a_tile] = rec.second.first;
        const auto& [cb, b_tile] = rec.second.second;
        TilePartial partial;
        partial.cells = MultiplyTiles(a_tile, b_tile, bs);
        return std::pair<ChunkId, TilePartial>(rb + cb * out_nrb,
                                               std::move(partial));
      }));
  auto reduced = partials.ReduceByKey(MergePartials);
  const uint32_t cpt = bs * bs;
  auto tiles = reduced
                   .MapValues([cpt](const TilePartial& p) {
                     auto cells = p.cells;
                     // Cancellation can produce explicit zeros; drop them.
                     cells.erase(std::remove_if(cells.begin(), cells.end(),
                                                [](const auto& c) {
                                                  return c.second == 0.0;
                                                }),
                                 cells.end());
                     return TileFromSortedCells(cpt, std::move(cells));
                   })
                   .Filter([](const std::pair<ChunkId, Chunk>& rec) {
                     return rec.second.num_valid() > 0;
                   });
  BlockMatrix out;
  out.rows_ = rows_;
  out.cols_ = other.cols_;
  out.block_ = block_;
  out.scheme_ = PartitionScheme::kHashChunk;
  out.array_ = ArrayRdd(MakeMeta(rows_, other.cols_, block_),
                        PairRdd<ChunkId, Chunk>(tiles.AsRdd(),
                                                tiles.partitioner()));
  (void)ctx;
  return out;
}

Result<BlockVector> BlockMatrix::MultiplyVector(const BlockVector& v) const {
  if (v.size() != cols_) {
    return Status::InvalidArgument("M x v dimension mismatch");
  }
  if (v.block() != block_) {
    return Status::InvalidArgument("vector block size mismatch");
  }
  const uint64_t nrb = num_row_blocks();
  const uint32_t bs = static_cast<uint32_t>(block_);
  using Keyed = std::pair<uint64_t, std::pair<uint64_t, Chunk>>;
  auto a_by_j = ToPair<uint64_t, std::pair<uint64_t, Chunk>>(
      array_.chunks().AsRdd().Map(
          [nrb](const std::pair<ChunkId, Chunk>& rec) {
            return Keyed{rec.first / nrb, {rec.first % nrb, rec.second}};
          }));
  const uint64_t rows = rows_;
  const uint64_t block = block_;
  auto partials = ToPair<uint64_t, VecBlock>(
      a_by_j.Join(v.blocks())
          .AsRdd()
          .Map([bs, rows, block](
                   const std::pair<uint64_t,
                                   std::pair<std::pair<uint64_t, Chunk>,
                                             VecBlock>>& rec) {
            const auto& [rb, tile] = rec.second.first;
            const VecBlock& vb = rec.second.second;
            VecBlock out;
            out.values.assign(
                std::min<uint64_t>(block, rows - rb * block), 0.0);
            tile.ForEachValid([&](uint32_t off, double av) {
              const uint32_t r = off / bs;
              const uint32_t j = off % bs;
              if (j < vb.values.size()) {
                out.values[r] += av * vb.values[j];
              }
            });
            return std::pair<uint64_t, VecBlock>(rb, std::move(out));
          }));
  auto reduced = partials.ReduceByKey([](const VecBlock& a,
                                         const VecBlock& b) {
    VecBlock out = a;
    for (size_t i = 0; i < out.values.size(); ++i) {
      out.values[i] += b.values[i];
    }
    return out;
  });
  // Missing row blocks (all-zero bands) still need zero blocks so the
  // result is a complete dense vector.
  std::vector<double> zeros(rows_, 0.0);
  BlockVector out = BlockVector::FromDense(ctx(), zeros, block_,
                                           v.blocks().num_partitions());
  auto merged = out.blocks().CoGroup(reduced).MapValues(
      [](const std::pair<std::vector<VecBlock>, std::vector<VecBlock>>&
             sides) {
        VecBlock blk = sides.first.front();
        for (const VecBlock& add : sides.second) {
          for (size_t i = 0; i < blk.values.size(); ++i) {
            blk.values[i] += add.values[i];
          }
        }
        return blk;
      });
  return BlockVector::FromBlocks(rows_, block_, /*is_column=*/true,
                                 std::move(merged));
}

BlockMatrix BlockMatrix::FilterRowBlocks(
    const std::shared_ptr<const std::unordered_set<uint64_t>>& keep) const {
  const uint64_t nrb = num_row_blocks();
  auto filtered = array_.chunks().Filter(
      [keep, nrb](const std::pair<ChunkId, Chunk>& rec) {
        return keep->count(rec.first % nrb) > 0;
      });
  BlockMatrix out = *this;
  out.array_ = ArrayRdd(array_.metadata(), std::move(filtered));
  return out;
}

BlockMatrix BlockMatrix::Transpose() const {
  const uint64_t nrb = num_row_blocks();
  const uint64_t t_nrb = num_col_blocks();
  const uint32_t bs = static_cast<uint32_t>(block_);
  auto transposed = array_.chunks().AsRdd().Map(
      [nrb, t_nrb, bs](const std::pair<ChunkId, Chunk>& rec) {
        const uint64_t rb = rec.first % nrb;
        const uint64_t cb = rec.first / nrb;
        const ChunkId t_id = cb + rb * t_nrb;
        std::vector<std::pair<uint32_t, double>> cells;
        cells.reserve(rec.second.num_valid());
        rec.second.ForEachValid([&](uint32_t off, double v) {
          cells.emplace_back((off % bs) * bs + off / bs, v);
        });
        std::sort(cells.begin(), cells.end());
        return std::pair<ChunkId, Chunk>(
            t_id, TileFromSortedCells(bs * bs, std::move(cells)));
      });
  // Tile ids changed: re-place them (one shuffle).
  auto placed = ToPair<ChunkId, Chunk>(std::move(transposed))
                    .PartitionBy(std::make_shared<HashPartitioner<ChunkId>>(
                        array_.chunks().num_partitions()));
  BlockMatrix out;
  out.rows_ = cols_;
  out.cols_ = rows_;
  out.block_ = block_;
  out.scheme_ = PartitionScheme::kHashChunk;
  out.array_ = ArrayRdd(MakeMeta(cols_, rows_, block_), std::move(placed));
  return out;
}

Result<BlockMatrix> BlockMatrix::TransposeSelfMultiply(
    const MatMulOptions& options) const {
  return Transpose().Multiply(*this, options);
}

Result<BlockVector> BlockMatrix::LeftMultiplyVector(
    const BlockVector& v) const {
  if (v.size() != rows_) {
    return Status::InvalidArgument("vT x M dimension mismatch");
  }
  if (v.block() != block_) {
    return Status::InvalidArgument("vector block size mismatch");
  }
  const uint64_t nrb = num_row_blocks();
  const uint32_t bs = static_cast<uint32_t>(block_);
  using Keyed = std::pair<uint64_t, std::pair<uint64_t, Chunk>>;
  auto a_by_rb = ToPair<uint64_t, std::pair<uint64_t, Chunk>>(
      array_.chunks().AsRdd().Map(
          [nrb](const std::pair<ChunkId, Chunk>& rec) {
            return Keyed{rec.first % nrb, {rec.first / nrb, rec.second}};
          }));
  const uint64_t cols = cols_;
  const uint64_t block = block_;
  auto partials = ToPair<uint64_t, VecBlock>(
      a_by_rb.Join(v.blocks())
          .AsRdd()
          .Map([bs, cols, block](
                   const std::pair<uint64_t,
                                   std::pair<std::pair<uint64_t, Chunk>,
                                             VecBlock>>& rec) {
            const auto& [cb, tile] = rec.second.first;
            const VecBlock& vb = rec.second.second;
            VecBlock out;
            out.values.assign(
                std::min<uint64_t>(block, cols - cb * block), 0.0);
            tile.ForEachValid([&](uint32_t off, double av) {
              const uint32_t r = off / bs;
              const uint32_t c = off % bs;
              if (r < vb.values.size() && c < out.values.size()) {
                out.values[c] += av * vb.values[r];
              }
            });
            return std::pair<uint64_t, VecBlock>(cb, std::move(out));
          }));
  auto reduced =
      partials.ReduceByKey([](const VecBlock& a, const VecBlock& b) {
        VecBlock out = a;
        for (size_t i = 0; i < out.values.size(); ++i) {
          out.values[i] += b.values[i];
        }
        return out;
      });
  std::vector<double> zeros(cols_, 0.0);
  BlockVector base = BlockVector::FromDense(ctx(), zeros, block_,
                                            v.blocks().num_partitions());
  auto merged = base.blocks().CoGroup(reduced).MapValues(
      [](const std::pair<std::vector<VecBlock>, std::vector<VecBlock>>&
             sides) {
        VecBlock blk = sides.first.front();
        for (const VecBlock& add : sides.second) {
          for (size_t i = 0; i < blk.values.size(); ++i) {
            blk.values[i] += add.values[i];
          }
        }
        return blk;
      });
  return BlockVector::FromBlocks(cols_, block_, /*is_column=*/false,
                                 std::move(merged));
}

}  // namespace spangle
