#ifndef SPANGLE_BASELINES_MATRIX_ENGINES_H_
#define SPANGLE_BASELINES_MATRIX_ENGINES_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/memory_budget.h"
#include "matrix/block_matrix.h"
#include "workload/matrix_gen.h"

namespace spangle {

/// The Fig. 10 machine-learning core operations on a common interface:
/// matrix-vector (M x v), vector-matrix (vT x M) and transpose-self
/// multiply (MT x M). MtM returns the non-zero count of the result (the
/// result itself can be larger than the input). Engines return
/// OutOfMemory / Unimplemented for the paper's "X" cells.
class MatrixEngine {
 public:
  virtual ~MatrixEngine() = default;
  virtual std::string name() const = 0;
  virtual Result<std::vector<double>> MxV(const std::vector<double>& v) = 0;
  virtual Result<std::vector<double>> VtM(const std::vector<double>& v) = 0;
  virtual Result<uint64_t> MtM() = 0;
};

/// Spangle: BlockMatrix with bitmask tiles, vector metadata transpose.
class SpangleMatrixEngine : public MatrixEngine {
 public:
  static Result<std::unique_ptr<SpangleMatrixEngine>> Load(
      Context* ctx, const SyntheticMatrix& m, uint64_t block,
      const MemoryBudget& budget = MemoryBudget());
  std::string name() const override { return "Spangle"; }
  Result<std::vector<double>> MxV(const std::vector<double>& v) override;
  Result<std::vector<double>> VtM(const std::vector<double>& v) override;
  Result<uint64_t> MtM() override;

 private:
  BlockMatrix matrix_;
  uint64_t block_ = 0;
};

/// Spark COO style: a plain RDD of (row, col, value) triples. MtM
/// cogroup-explodes with sum_r nnz_r^2 intermediates — the reason COO
/// handles the ultra-sparse Hardesty but dies on the denser Mouse.
class CooMatrixEngine : public MatrixEngine {
 public:
  static Result<std::unique_ptr<CooMatrixEngine>> Load(
      Context* ctx, const SyntheticMatrix& m,
      const MemoryBudget& budget = MemoryBudget());
  std::string name() const override { return "Spark(COO)"; }
  Result<std::vector<double>> MxV(const std::vector<double>& v) override;
  Result<std::vector<double>> VtM(const std::vector<double>& v) override;
  Result<uint64_t> MtM() override;

 private:
  Context* ctx_ = nullptr;
  uint64_t rows_ = 0, cols_ = 0;
  MemoryBudget budget_;
  Rdd<MatrixEntry> entries_;
};

/// MLlib style: row-partitioned sparse rows with *dense* driver-side
/// accumulators; the Gramian (MtM) allocates a dense cols x cols buffer,
/// which is what fails for wide matrices.
class MllibMatrixEngine : public MatrixEngine {
 public:
  static Result<std::unique_ptr<MllibMatrixEngine>> Load(
      Context* ctx, const SyntheticMatrix& m,
      const MemoryBudget& budget = MemoryBudget());
  std::string name() const override { return "MLlib(CSC)"; }
  Result<std::vector<double>> MxV(const std::vector<double>& v) override;
  Result<std::vector<double>> VtM(const std::vector<double>& v) override;
  Result<uint64_t> MtM() override;

 private:
  struct SparseRow {
    uint64_t row = 0;
    std::vector<uint32_t> cols;
    std::vector<double> values;
    size_t SerializedBytes() const {
      return sizeof(SparseRow) + cols.size() * 12;
    }
  };
  Context* ctx_ = nullptr;
  uint64_t rows_ = 0, cols_ = 0;
  MemoryBudget budget_;
  Rdd<SparseRow> rows_rdd_;
};

/// SciSpark style: dense row bands; no distributed matrix multiply at all
/// (the paper: "SciSpark does not provide the matrix multiplication in a
/// distributed environment"), and dense storage OOMs on anything large.
class SciSparkMatrixEngine : public MatrixEngine {
 public:
  static Result<std::unique_ptr<SciSparkMatrixEngine>> Load(
      Context* ctx, const SyntheticMatrix& m,
      const MemoryBudget& budget = MemoryBudget());
  std::string name() const override { return "SciSpark"; }
  Result<std::vector<double>> MxV(const std::vector<double>& v) override;
  Result<std::vector<double>> VtM(const std::vector<double>& v) override;
  Result<uint64_t> MtM() override;

 private:
  struct DenseBand {
    uint64_t row_begin = 0;
    uint64_t rows = 0;
    std::vector<double> values;  // rows x cols row-major
    size_t SerializedBytes() const {
      return sizeof(DenseBand) + values.size() * sizeof(double);
    }
  };
  Context* ctx_ = nullptr;
  uint64_t rows_ = 0, cols_ = 0;
  Rdd<DenseBand> bands_;
};

/// SciDB style: disk-resident cells streamed per operation; temporary
/// results spill to disk. Functionally complete but I/O-bound.
class SciDbMatrixEngine : public MatrixEngine {
 public:
  static Result<std::unique_ptr<SciDbMatrixEngine>> Load(
      const SyntheticMatrix& m, const std::string& dir);
  ~SciDbMatrixEngine() override;
  std::string name() const override { return "SciDB"; }
  Result<std::vector<double>> MxV(const std::vector<double>& v) override;
  Result<std::vector<double>> VtM(const std::vector<double>& v) override;
  Result<uint64_t> MtM() override;

 private:
  struct DiskEntry {
    uint64_t row, col;
    double value;
  };
  Status Scan(const std::function<void(const DiskEntry&)>& fn) const;

  uint64_t rows_ = 0, cols_ = 0;
  std::string file_;
};

}  // namespace spangle

#endif  // SPANGLE_BASELINES_MATRIX_ENGINES_H_
