#ifndef SPANGLE_BASELINES_PAGERANK_BASELINES_H_
#define SPANGLE_BASELINES_PAGERANK_BASELINES_H_

#include <utility>
#include <vector>

#include "common/result.h"
#include "engine/engine.h"

namespace spangle {

struct PageRankRun {
  std::vector<double> ranks;
  std::vector<double> iteration_seconds;
  size_t graph_bytes = 0;  // cached edge representation size
};

/// The "plain Spark" PageRank of Learning Spark [39]: links grouped as
/// (src -> out-neighbor list), ranks joined with links every iteration,
/// contributions reduced by destination.
Result<PageRankRun> SparkPageRank(
    Context* ctx, uint64_t n,
    const std::vector<std::pair<uint64_t, uint64_t>>& edges, double damping,
    int iterations);

/// GraphX-like PageRank: a vertex RDD and an edge RDD; each iteration
/// joins vertex ranks to edges (the triplet view), sends messages along
/// edges and aggregates them at the destination. Per the paper's
/// observation, the triplet join re-creates and re-caches an
/// edge-with-rank RDD every iteration.
Result<PageRankRun> GraphXPageRank(
    Context* ctx, uint64_t n,
    const std::vector<std::pair<uint64_t, uint64_t>>& edges, double damping,
    int iterations);

}  // namespace spangle

#endif  // SPANGLE_BASELINES_PAGERANK_BASELINES_H_
