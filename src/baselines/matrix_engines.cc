#include "baselines/matrix_engines.h"

#include <algorithm>

#include "baselines/diskdb.h"
#include <cstdio>
#include <fstream>
#include <unordered_map>

namespace spangle {

// ---- Spangle ----

Result<std::unique_ptr<SpangleMatrixEngine>> SpangleMatrixEngine::Load(
    Context* ctx, const SyntheticMatrix& m, uint64_t block,
    const MemoryBudget& budget) {
  auto engine = std::make_unique<SpangleMatrixEngine>();
  engine->block_ = block;
  SPANGLE_ASSIGN_OR_RETURN(
      engine->matrix_,
      BlockMatrix::FromEntries(ctx, m.rows, m.cols, block, m.entries));
  SPANGLE_RETURN_NOT_OK(
      budget.Reserve(engine->matrix_.MemoryBytes(), "Spangle tiles"));
  engine->matrix_.Cache();
  return engine;
}

Result<std::vector<double>> SpangleMatrixEngine::MxV(
    const std::vector<double>& v) {
  auto bv = BlockVector::FromDense(matrix_.ctx(), v, block_);
  SPANGLE_ASSIGN_OR_RETURN(BlockVector out, matrix_.MultiplyVector(bv));
  return out.ToDense();
}

Result<std::vector<double>> SpangleMatrixEngine::VtM(
    const std::vector<double>& v) {
  // The vector arrives as a column; opt2's metadata transpose makes it a
  // row without touching data, then vT M runs without any matrix
  // transpose.
  auto bv = BlockVector::FromDense(matrix_.ctx(), v, block_)
                .TransposeMetadata();
  SPANGLE_ASSIGN_OR_RETURN(BlockVector out, matrix_.LeftMultiplyVector(bv));
  return out.ToDense();
}

Result<uint64_t> SpangleMatrixEngine::MtM() {
  SPANGLE_ASSIGN_OR_RETURN(BlockMatrix out, matrix_.TransposeSelfMultiply());
  return out.NumNonZero();
}

// ---- Spark COO ----

Result<std::unique_ptr<CooMatrixEngine>> CooMatrixEngine::Load(
    Context* ctx, const SyntheticMatrix& m, const MemoryBudget& budget) {
  auto engine = std::make_unique<CooMatrixEngine>();
  engine->ctx_ = ctx;
  engine->rows_ = m.rows;
  engine->cols_ = m.cols;
  engine->budget_ = budget;
  // Triple storage: 24 bytes per non-zero, no compression.
  SPANGLE_RETURN_NOT_OK(
      budget.Reserve(m.entries.size() * sizeof(MatrixEntry), "COO triples"));
  engine->entries_ = ctx->Parallelize(m.entries);
  engine->entries_.Cache();
  return engine;
}

Result<std::vector<double>> CooMatrixEngine::MxV(
    const std::vector<double>& v) {
  // Broadcast of the dense vector to every task.
  SPANGLE_RETURN_NOT_OK(budget_.Reserve(v.size() * sizeof(double) *
                                            static_cast<uint64_t>(
                                                entries_.num_partitions()),
                                        "COO vector broadcast"));
  auto bv = std::make_shared<std::vector<double>>(v);
  auto products = entries_.Map([bv](const MatrixEntry& e) {
    return std::pair<uint64_t, double>(e.row, e.value * (*bv)[e.col]);
  });
  auto reduced = ToPair<uint64_t, double>(std::move(products))
                     .ReduceByKey([](const double& a, const double& b) {
                       return a + b;
                     });
  std::vector<double> out(rows_, 0.0);
  for (const auto& [r, val] : reduced.Collect()) out[r] = val;
  return out;
}

Result<std::vector<double>> CooMatrixEngine::VtM(
    const std::vector<double>& v) {
  SPANGLE_RETURN_NOT_OK(budget_.Reserve(v.size() * sizeof(double) *
                                            static_cast<uint64_t>(
                                                entries_.num_partitions()),
                                        "COO vector broadcast"));
  auto bv = std::make_shared<std::vector<double>>(v);
  auto products = entries_.Map([bv](const MatrixEntry& e) {
    return std::pair<uint64_t, double>(e.col, e.value * (*bv)[e.row]);
  });
  auto reduced = ToPair<uint64_t, double>(std::move(products))
                     .ReduceByKey([](const double& a, const double& b) {
                       return a + b;
                     });
  std::vector<double> out(cols_, 0.0);
  for (const auto& [c, val] : reduced.Collect()) out[c] = val;
  return out;
}

Result<uint64_t> CooMatrixEngine::MtM() {
  // (MT M)[i][j] = sum_r M[r][i] * M[r][j]: cogroup by row then emit the
  // per-row cross product. Intermediate volume = sum_r nnz_r^2 triples.
  auto by_row = ToPair<uint64_t, std::pair<uint64_t, double>>(
      entries_.Map([](const MatrixEntry& e) {
        return std::pair<uint64_t, std::pair<uint64_t, double>>(
            e.row, {e.col, e.value});
      }));
  auto grouped = by_row.GroupByKey();
  // Estimate the explosion before paying for it (Spark would just OOM).
  const uint64_t cross_terms = grouped.AsRdd().Aggregate<uint64_t>(
      0,
      [](uint64_t acc,
         const std::pair<uint64_t,
                         std::vector<std::pair<uint64_t, double>>>& rec) {
        return acc + rec.second.size() * rec.second.size();
      },
      [](uint64_t a, uint64_t b) { return a + b; });
  SPANGLE_RETURN_NOT_OK(budget_.Reserve(cross_terms * 16,
                                        "COO MtM cross-product records"));
  auto partials = grouped.AsRdd().FlatMap(
      [](const std::pair<uint64_t,
                         std::vector<std::pair<uint64_t, double>>>& rec) {
        std::vector<std::pair<uint64_t, double>> out;
        out.reserve(rec.second.size() * rec.second.size());
        for (const auto& [ci, vi] : rec.second) {
          for (const auto& [cj, vj] : rec.second) {
            out.emplace_back(ci * (uint64_t{1} << 32) + cj, vi * vj);
          }
        }
        return out;
      });
  auto reduced = ToPair<uint64_t, double>(std::move(partials))
                     .ReduceByKey([](const double& a, const double& b) {
                       return a + b;
                     });
  return reduced.Count();
}

// ---- MLlib CSC ----

Result<std::unique_ptr<MllibMatrixEngine>> MllibMatrixEngine::Load(
    Context* ctx, const SyntheticMatrix& m, const MemoryBudget& budget) {
  auto engine = std::make_unique<MllibMatrixEngine>();
  engine->ctx_ = ctx;
  engine->rows_ = m.rows;
  engine->cols_ = m.cols;
  engine->budget_ = budget;
  std::unordered_map<uint64_t, SparseRow> rows;
  for (const auto& e : m.entries) {
    auto& row = rows[e.row];
    row.row = e.row;
    row.cols.push_back(static_cast<uint32_t>(e.col));
    row.values.push_back(e.value);
  }
  SPANGLE_RETURN_NOT_OK(budget.Reserve(m.entries.size() * 12 +
                                           rows.size() * sizeof(SparseRow),
                                       "sparse rows"));
  std::vector<SparseRow> flat;
  flat.reserve(rows.size());
  for (auto& [r, row] : rows) flat.push_back(std::move(row));
  engine->rows_rdd_ = ctx->Parallelize(std::move(flat));
  engine->rows_rdd_.Cache();
  return engine;
}

Result<std::vector<double>> MllibMatrixEngine::MxV(
    const std::vector<double>& v) {
  auto bv = std::make_shared<std::vector<double>>(v);
  auto products = rows_rdd_.Map([bv](const SparseRow& row) {
    double dot = 0;
    for (size_t i = 0; i < row.cols.size(); ++i) {
      dot += row.values[i] * (*bv)[row.cols[i]];
    }
    return std::pair<uint64_t, double>(row.row, dot);
  });
  std::vector<double> out(rows_, 0.0);
  for (const auto& [r, val] : products.Collect()) out[r] = val;
  return out;
}

Result<std::vector<double>> MllibMatrixEngine::VtM(
    const std::vector<double>& v) {
  // Dense cols-sized accumulator per partition (MLlib's approach).
  SPANGLE_RETURN_NOT_OK(budget_.Reserve(
      cols_ * sizeof(double) *
          static_cast<uint64_t>(rows_rdd_.num_partitions()),
      "dense VtM accumulators"));
  auto bv = std::make_shared<std::vector<double>>(v);
  const uint64_t cols = cols_;
  auto acc = rows_rdd_.Aggregate<std::vector<double>>(
      std::vector<double>(cols, 0.0),
      [bv](std::vector<double> a, const SparseRow& row) {
        const double x = (*bv)[row.row];
        for (size_t i = 0; i < row.cols.size(); ++i) {
          a[row.cols[i]] += x * row.values[i];
        }
        return a;
      },
      [](std::vector<double> a, const std::vector<double>& b) {
        for (size_t i = 0; i < a.size(); ++i) a[i] += b[i];
        return a;
      });
  return acc;
}

Result<uint64_t> MllibMatrixEngine::MtM() {
  // computeGramian: a dense cols x cols accumulator.
  SPANGLE_RETURN_NOT_OK(
      budget_.Reserve(cols_ * cols_ * sizeof(double), "dense Gramian"));
  const uint64_t cols = cols_;
  auto gram = rows_rdd_.Aggregate<std::vector<double>>(
      std::vector<double>(cols * cols, 0.0),
      [cols](std::vector<double> g, const SparseRow& row) {
        for (size_t i = 0; i < row.cols.size(); ++i) {
          for (size_t j = 0; j < row.cols.size(); ++j) {
            g[uint64_t{row.cols[i]} * cols + row.cols[j]] +=
                row.values[i] * row.values[j];
          }
        }
        return g;
      },
      [](std::vector<double> a, const std::vector<double>& b) {
        for (size_t i = 0; i < a.size(); ++i) a[i] += b[i];
        return a;
      });
  uint64_t nnz = 0;
  for (double v : gram) nnz += (v != 0.0) ? 1 : 0;
  return nnz;
}

// ---- SciSpark ----

Result<std::unique_ptr<SciSparkMatrixEngine>> SciSparkMatrixEngine::Load(
    Context* ctx, const SyntheticMatrix& m, const MemoryBudget& budget) {
  auto engine = std::make_unique<SciSparkMatrixEngine>();
  engine->ctx_ = ctx;
  engine->rows_ = m.rows;
  engine->cols_ = m.cols;
  // Dense ndarrays: the full rows x cols footprint must materialize.
  SPANGLE_RETURN_NOT_OK(
      budget.Reserve(m.rows * m.cols * sizeof(double), "dense ndarray"));
  const uint64_t band_rows = std::max<uint64_t>(1, m.rows / 16);
  const uint64_t n_bands = (m.rows + band_rows - 1) / band_rows;
  std::vector<DenseBand> bands(n_bands);
  for (uint64_t b = 0; b < n_bands; ++b) {
    bands[b].row_begin = b * band_rows;
    bands[b].rows = std::min(band_rows, m.rows - b * band_rows);
    bands[b].values.assign(bands[b].rows * m.cols, 0.0);
  }
  for (const auto& e : m.entries) {
    const uint64_t b = e.row / band_rows;
    bands[b].values[(e.row - bands[b].row_begin) * m.cols + e.col] = e.value;
  }
  engine->bands_ = ctx->Parallelize(std::move(bands));
  engine->bands_.Cache();
  return engine;
}

Result<std::vector<double>> SciSparkMatrixEngine::MxV(
    const std::vector<double>& v) {
  auto bv = std::make_shared<std::vector<double>>(v);
  const uint64_t cols = cols_;
  auto partials = bands_.Map([bv, cols](const DenseBand& band) {
    std::vector<double> out(band.rows, 0.0);
    for (uint64_t r = 0; r < band.rows; ++r) {
      double dot = 0;
      for (uint64_t c = 0; c < cols; ++c) {
        dot += band.values[r * cols + c] * (*bv)[c];
      }
      out[r] = dot;
    }
    return std::make_pair(band.row_begin, std::move(out));
  });
  std::vector<double> out(rows_, 0.0);
  for (const auto& [begin, vals] : partials.Collect()) {
    std::copy(vals.begin(), vals.end(), out.begin() + begin);
  }
  return out;
}

Result<std::vector<double>> SciSparkMatrixEngine::VtM(
    const std::vector<double>& v) {
  auto bv = std::make_shared<std::vector<double>>(v);
  const uint64_t cols = cols_;
  auto acc = bands_.Aggregate<std::vector<double>>(
      std::vector<double>(cols, 0.0),
      [bv, cols](std::vector<double> a, const DenseBand& band) {
        for (uint64_t r = 0; r < band.rows; ++r) {
          const double x = (*bv)[band.row_begin + r];
          if (x == 0.0) continue;
          for (uint64_t c = 0; c < cols; ++c) {
            a[c] += x * band.values[r * cols + c];
          }
        }
        return a;
      },
      [](std::vector<double> a, const std::vector<double>& b) {
        for (size_t i = 0; i < a.size(); ++i) a[i] += b[i];
        return a;
      });
  return acc;
}

Result<uint64_t> SciSparkMatrixEngine::MtM() {
  return Status::Unimplemented(
      "SciSpark provides no distributed matrix multiplication");
}

// ---- SciDB ----

Result<std::unique_ptr<SciDbMatrixEngine>> SciDbMatrixEngine::Load(
    const SyntheticMatrix& m, const std::string& dir) {
  auto engine = std::unique_ptr<SciDbMatrixEngine>(new SciDbMatrixEngine());
  engine->rows_ = m.rows;
  engine->cols_ = m.cols;
  engine->file_ =
      dir + "/scidb_matrix_" + m.name + "_" + UniqueDiskFileTag() + ".bin";
  std::ofstream out(engine->file_, std::ios::binary);
  if (!out) return Status::IOError("cannot create " + engine->file_);
  for (const auto& e : m.entries) {
    DiskEntry de{e.row, e.col, e.value};
    out.write(reinterpret_cast<const char*>(&de), sizeof(de));
  }
  if (!out) return Status::IOError("write failed: " + engine->file_);
  return engine;
}

SciDbMatrixEngine::~SciDbMatrixEngine() { std::remove(file_.c_str()); }

Status SciDbMatrixEngine::Scan(
    const std::function<void(const DiskEntry&)>& fn) const {
  std::ifstream in(file_, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + file_);
  DiskEntry de;
  while (in.read(reinterpret_cast<char*>(&de), sizeof(de))) fn(de);
  return Status::OK();
}

Result<std::vector<double>> SciDbMatrixEngine::MxV(
    const std::vector<double>& v) {
  std::vector<double> out(rows_, 0.0);
  SPANGLE_RETURN_NOT_OK(Scan([&](const DiskEntry& e) {
    out[e.row] += e.value * v[e.col];
  }));
  return out;
}

Result<std::vector<double>> SciDbMatrixEngine::VtM(
    const std::vector<double>& v) {
  std::vector<double> out(cols_, 0.0);
  SPANGLE_RETURN_NOT_OK(Scan([&](const DiskEntry& e) {
    out[e.col] += e.value * v[e.row];
  }));
  return out;
}

Result<uint64_t> SciDbMatrixEngine::MtM() {
  // Disk-based: re-scan the matrix once per row group, spilling partial
  // products to a temp file between the two passes.
  std::unordered_map<uint64_t, std::vector<std::pair<uint64_t, double>>>
      by_row;
  SPANGLE_RETURN_NOT_OK(Scan([&](const DiskEntry& e) {
    by_row[e.row].emplace_back(e.col, e.value);
  }));
  const std::string tmp = file_ + ".mtm_tmp";
  uint64_t written = 0;
  {
    std::ofstream out(tmp, std::ios::binary);
    if (!out) return Status::IOError("cannot create " + tmp);
    for (const auto& [r, cells] : by_row) {
      for (const auto& [ci, vi] : cells) {
        for (const auto& [cj, vj] : cells) {
          DiskEntry de{ci, cj, vi * vj};
          out.write(reinterpret_cast<const char*>(&de), sizeof(de));
          ++written;
        }
      }
    }
  }
  std::unordered_map<uint64_t, double> acc;
  {
    std::ifstream in(tmp, std::ios::binary);
    if (!in) return Status::IOError("cannot reopen " + tmp);
    DiskEntry de;
    while (in.read(reinterpret_cast<char*>(&de), sizeof(de))) {
      acc[de.row * (uint64_t{1} << 32) + de.col] += de.value;
    }
  }
  std::remove(tmp.c_str());
  uint64_t nnz = 0;
  for (const auto& [k, v] : acc) nnz += (v != 0.0) ? 1 : 0;
  return nnz;
}

}  // namespace spangle
