#include "baselines/tile_engine.h"

#include <cmath>
#include <map>
#include <unordered_map>

namespace spangle {

namespace {
inline bool InBox(int64_t img, int64_t x, int64_t y, const QueryParams& q) {
  if (!q.use_range) return true;
  return img >= q.lo[0] && img <= q.hi[0] && x >= q.lo[1] && x <= q.hi[1] &&
         y >= q.lo[2] && y <= q.hi[2];
}
}  // namespace

Result<RasterFramesEngine> RasterFramesEngine::Load(
    Context* ctx, const RasterData& data, uint32_t tile_edge,
    const MemoryBudget& budget) {
  if (data.meta.num_dims() != 3) {
    return Status::InvalidArgument("RasterFrames engine expects (img, x, y)");
  }
  if (tile_edge == 0) {
    return Status::InvalidArgument("tile edge must be positive");
  }
  RasterFramesEngine engine;
  engine.attr_names_ = data.attr_names;
  engine.tile_edge_ = tile_edge;
  const uint64_t images = data.meta.dim(0).size;
  const uint64_t width = data.meta.dim(1).size;
  const uint64_t height = data.meta.dim(2).size;
  const uint64_t tx_count = (width + tile_edge - 1) / tile_edge;
  const uint64_t ty_count = (height + tile_edge - 1) / tile_edge;
  // Only tiles holding data are kept (the DataFrame row exists per tile),
  // but each kept tile is dense. Estimate: assume every tile with at
  // least one valid cell materializes fully.
  const double nan = std::nan("");
  // Driver-side assembly ("it reads them in the master node and spreads
  // them to workers").
  std::map<std::tuple<int64_t, int64_t, int64_t>, Tile> tiles;
  for (size_t b = 0; b < data.cells.size(); ++b) {
    for (const auto& cell : data.cells[b]) {
      const int64_t img = cell.pos[0];
      const int64_t tx = cell.pos[1] / tile_edge;
      const int64_t ty = cell.pos[2] / tile_edge;
      auto [it, inserted] = tiles.try_emplace({img, tx, ty});
      Tile& tile = it->second;
      if (inserted) {
        tile.img = img;
        tile.tx = tx * tile_edge;
        tile.ty = ty * tile_edge;
        tile.edge = tile_edge;
        tile.bands.assign(
            data.attr_names.size(),
            std::vector<double>(static_cast<size_t>(tile_edge) * tile_edge,
                                nan));
      }
      const uint64_t dx = static_cast<uint64_t>(cell.pos[1]) % tile_edge;
      const uint64_t dy = static_cast<uint64_t>(cell.pos[2]) % tile_edge;
      tile.bands[b][dx * tile_edge + dy] = cell.value;
    }
  }
  const uint64_t need = tiles.size() * data.attr_names.size() *
                        uint64_t{tile_edge} * tile_edge * sizeof(double);
  SPANGLE_RETURN_NOT_OK(budget.Reserve(need, "dense tiles"));
  (void)images;
  (void)tx_count;
  (void)ty_count;
  std::vector<Tile> flat;
  flat.reserve(tiles.size());
  for (auto& [key, tile] : tiles) flat.push_back(std::move(tile));
  engine.tiles_ = ctx->Parallelize(std::move(flat));
  engine.tiles_.Cache();
  return engine;
}

Result<size_t> RasterFramesEngine::BandIndex(const std::string& attr) const {
  for (size_t b = 0; b < attr_names_.size(); ++b) {
    if (attr_names_[b] == attr) return b;
  }
  return Status::NotFound("no band '" + attr + "'");
}

Result<double> RasterFramesEngine::Q1Average(const QueryParams& q) {
  SPANGLE_ASSIGN_OR_RETURN(size_t band, BandIndex(q.attr));
  struct SumCount {
    double sum = 0;
    uint64_t n = 0;
  };
  auto sc = Scan<SumCount>(
      SumCount{},
      [band, q](SumCount acc, const Tile& t) {
        for (uint32_t dx = 0; dx < t.edge; ++dx) {
          for (uint32_t dy = 0; dy < t.edge; ++dy) {
            const double v = t.bands[band][dx * t.edge + dy];
            if (std::isnan(v)) continue;
            if (!InBox(t.img, t.tx + dx, t.ty + dy, q)) continue;
            acc.sum += v;
            acc.n += 1;
          }
        }
        return acc;
      },
      [](SumCount a, const SumCount& b) {
        a.sum += b.sum;
        a.n += b.n;
        return a;
      });
  return sc.n == 0 ? 0.0 : sc.sum / static_cast<double>(sc.n);
}

Result<uint64_t> RasterFramesEngine::Q2Regrid(const QueryParams& q) {
  SPANGLE_ASSIGN_OR_RETURN(size_t band, BandIndex(q.attr));
  if (q.grid.size() != 3 || q.grid[1] != tile_edge_ ||
      q.grid[2] != tile_edge_) {
    return Status::FailedPrecondition(
        "RasterFrames regrids only at its fixed tile size");
  }
  // The tile *is* the output block: one pass, no reshaping at all.
  return tiles_.Aggregate<uint64_t>(
      0,
      [band, q](uint64_t acc, const Tile& t) {
        uint64_t n = 0;
        for (uint32_t i = 0; i < t.edge * t.edge; ++i) {
          const double v = t.bands[band][i];
          if (!std::isnan(v) &&
              InBox(t.img, t.tx + i / t.edge, t.ty + i % t.edge, q)) {
            ++n;
          }
        }
        return acc + (n > 0 ? 1 : 0);
      },
      [](uint64_t a, uint64_t b) { return a + b; });
}

Result<double> RasterFramesEngine::Q3FilteredAverage(const QueryParams& q) {
  SPANGLE_ASSIGN_OR_RETURN(size_t band, BandIndex(q.attr));
  const double threshold = q.threshold;
  struct SumCount {
    double sum = 0;
    uint64_t n = 0;
  };
  auto sc = Scan<SumCount>(
      SumCount{},
      [band, q, threshold](SumCount acc, const Tile& t) {
        for (uint32_t dx = 0; dx < t.edge; ++dx) {
          for (uint32_t dy = 0; dy < t.edge; ++dy) {
            const double v = t.bands[band][dx * t.edge + dy];
            if (std::isnan(v) || v <= threshold) continue;
            if (!InBox(t.img, t.tx + dx, t.ty + dy, q)) continue;
            acc.sum += v;
            acc.n += 1;
          }
        }
        return acc;
      },
      [](SumCount a, const SumCount& b) {
        a.sum += b.sum;
        a.n += b.n;
        return a;
      });
  return sc.n == 0 ? 0.0 : sc.sum / static_cast<double>(sc.n);
}

Result<uint64_t> RasterFramesEngine::Q4Polygons(const QueryParams& q) {
  SPANGLE_ASSIGN_OR_RETURN(size_t band1, BandIndex(q.attr));
  SPANGLE_ASSIGN_OR_RETURN(size_t band2, BandIndex(q.attr2));
  const double t1 = q.threshold, t2 = q.threshold2;
  return Scan<uint64_t>(
      0,
      [band1, band2, q, t1, t2](uint64_t acc, const Tile& t) {
        for (uint32_t dx = 0; dx < t.edge; ++dx) {
          for (uint32_t dy = 0; dy < t.edge; ++dy) {
            const double v1 = t.bands[band1][dx * t.edge + dy];
            const double v2 = t.bands[band2][dx * t.edge + dy];
            if (std::isnan(v1) || v1 <= t1) continue;
            if (std::isnan(v2) || v2 <= t2) continue;
            if (!InBox(t.img, t.tx + dx, t.ty + dy, q)) continue;
            ++acc;
          }
        }
        return acc;
      },
      [](uint64_t a, uint64_t b) { return a + b; });
}

Result<uint64_t> RasterFramesEngine::Q5Density(const QueryParams& q) {
  SPANGLE_ASSIGN_OR_RETURN(size_t band, BandIndex(q.attr));
  if (q.grid.size() != 3) {
    return Status::InvalidArgument("Q5 grid must be 3-dimensional");
  }
  const auto grid = q.grid;
  // Tiles rarely align with the Q5 grouping grid, so partial counts
  // shuffle and merge.
  auto partials = tiles_.FlatMap([band, q, grid](const Tile& t) {
    std::unordered_map<uint64_t, uint64_t> acc;
    for (uint32_t dx = 0; dx < t.edge; ++dx) {
      for (uint32_t dy = 0; dy < t.edge; ++dy) {
        const double v = t.bands[band][dx * t.edge + dy];
        if (std::isnan(v)) continue;
        const int64_t x = t.tx + dx, y = t.ty + dy;
        if (!InBox(t.img, x, y, q)) continue;
        const uint64_t key =
            ((static_cast<uint64_t>(t.img) / grid[0]) * 100003 +
             static_cast<uint64_t>(x) / grid[1]) *
                100003 +
            static_cast<uint64_t>(y) / grid[2];
        acc[key] += 1;
      }
    }
    std::vector<std::pair<uint64_t, uint64_t>> out(acc.begin(), acc.end());
    return out;
  });
  auto merged = ToPair<uint64_t, uint64_t>(std::move(partials))
                    .ReduceByKey([](const uint64_t& a, const uint64_t& b) {
                      return a + b;
                    });
  const double cut = q.min_count;
  return merged.AsRdd().Aggregate<uint64_t>(
      0,
      [cut](uint64_t acc, const std::pair<uint64_t, uint64_t>& rec) {
        return acc + (static_cast<double>(rec.second) > cut ? 1 : 0);
      },
      [](uint64_t a, uint64_t b) { return a + b; });
}

}  // namespace spangle
