#ifndef SPANGLE_BASELINES_DENSE_ENGINE_H_
#define SPANGLE_BASELINES_DENSE_ENGINE_H_

#include <string>
#include <vector>

#include "baselines/memory_budget.h"
#include "workload/queries.h"
#include "workload/raster_gen.h"

namespace spangle {

/// SciSpark-like baseline (paper Sec. VII-B): every image is held as a
/// fully *dense* per-band plane — invalid cells are stored as NaN rather
/// than dropped — so memory scales with the raster extent, not the data,
/// and every query scans every pixel. This is exactly why SciSpark
/// "requires more memory than Spangle" and fails to load large arrays.
class SciSparkEngine : public RasterEngine {
 public:
  /// One record per image: all bands, dense row-major (x * height + y).
  struct Frame {
    int64_t img = 0;
    std::vector<std::vector<double>> bands;  // bands[b][x*height+y], NaN=null

    size_t SerializedBytes() const {
      size_t n = sizeof(Frame);
      for (const auto& b : bands) n += b.size() * sizeof(double);
      return n;
    }
  };

  /// Loads the raster densely; fails with OutOfMemory when the dense
  /// planes exceed `budget`.
  static Result<SciSparkEngine> Load(Context* ctx, const RasterData& data,
                                     const MemoryBudget& budget = MemoryBudget());

  std::string name() const override { return "SciSpark"; }
  Result<double> Q1Average(const QueryParams& q) override;
  Result<uint64_t> Q2Regrid(const QueryParams& q) override;
  Result<double> Q3FilteredAverage(const QueryParams& q) override;
  Result<uint64_t> Q4Polygons(const QueryParams& q) override;
  Result<uint64_t> Q5Density(const QueryParams& q) override;

 private:
  Result<size_t> BandIndex(const std::string& attr) const;

  std::vector<std::string> attr_names_;
  uint64_t width_ = 0;
  uint64_t height_ = 0;
  Rdd<Frame> frames_;
};

}  // namespace spangle

#endif  // SPANGLE_BASELINES_DENSE_ENGINE_H_
