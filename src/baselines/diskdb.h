#ifndef SPANGLE_BASELINES_DISKDB_H_
#define SPANGLE_BASELINES_DISKDB_H_

#include <string>
#include <vector>

#include "workload/queries.h"
#include "workload/raster_gen.h"

namespace spangle {

/// Filename tag unique across processes and engine instances. The disk
/// engines write under a caller-supplied dir (tests share /tmp), and
/// ctest runs each discovered test in its own process — fixed names let
/// concurrent tests clobber each other's stores.
std::string UniqueDiskFileTag();

/// SciDB-like baseline: a C++ disk-based array store. Cells live in
/// per-attribute files sorted by coordinates; queries push the range
/// predicate into the scan (so pure selections are fast), but any
/// compute-heavy operator (regrid/grouping) materializes its intermediate
/// result to a temporary file before the next operator consumes it —
/// real disk I/O, which is exactly what makes Q2/Q5 "relatively slow"
/// for SciDB in Fig. 7a.
class SciDbEngine : public RasterEngine {
 public:
  /// Writes the attribute files under `dir` (created by the caller).
  static Result<SciDbEngine> Load(const RasterData& data,
                                  const std::string& dir);

  ~SciDbEngine();
  SciDbEngine(SciDbEngine&&) = default;
  SciDbEngine& operator=(SciDbEngine&&) = default;

  std::string name() const override { return "SciDB"; }
  Result<double> Q1Average(const QueryParams& q) override;
  Result<uint64_t> Q2Regrid(const QueryParams& q) override;
  Result<double> Q3FilteredAverage(const QueryParams& q) override;
  Result<uint64_t> Q4Polygons(const QueryParams& q) override;
  Result<uint64_t> Q5Density(const QueryParams& q) override;

 private:
  SciDbEngine() = default;

  struct DiskCell {
    int64_t pos[3];
    double value;
  };

  Result<size_t> AttrIndex(const std::string& attr) const;
  /// Streams an attribute file, pushing the box predicate into the scan.
  Status ScanAttr(size_t attr, const QueryParams& q,
                  const std::function<void(const DiskCell&)>& fn) const;
  /// Materializes grouped partial states to a temp file and streams them
  /// back (the operator-boundary disk round trip).
  Result<uint64_t> GroupToDiskAndCount(
      size_t attr, const QueryParams& q,
      const std::function<bool(double sum, uint64_t n)>& keep) const;

  std::string dir_;
  std::vector<std::string> attr_names_;
  std::vector<std::string> files_;
  bool owns_files_ = false;
};

}  // namespace spangle

#endif  // SPANGLE_BASELINES_DISKDB_H_
