#ifndef SPANGLE_BASELINES_MLLIB_LR_H_
#define SPANGLE_BASELINES_MLLIB_LR_H_

#include "baselines/memory_budget.h"
#include "ml/logreg.h"

namespace spangle {

/// MLlib-like logistic regression: full-batch gradient descent over
/// row-partitioned sparse rows with JVM-style per-record overhead at
/// ingest and a dense per-partition gradient accumulator. The ingest
/// overhead is why the real MLlib runs out of heap on the two larger
/// Table III datasets while Spangle's chunked columns fit.
struct MllibLrOptions {
  double step_size = 0.6;
  double tolerance = 1e-4;
  int max_iterations = 200;
  /// JVM boxing/object-header multiplier applied to the raw data size
  /// when checking the ingest against the budget.
  double ingest_overhead = 4.0;
};

Result<TrainResult> MllibTrainLogReg(Context* ctx, const SparseDataset& data,
                                     const MllibLrOptions& options,
                                     const MemoryBudget& budget);

}  // namespace spangle

#endif  // SPANGLE_BASELINES_MLLIB_LR_H_
