#include "baselines/pagerank_baselines.h"

#include "common/stopwatch.h"
#include "engine/size_estimator.h"

namespace spangle {

Result<PageRankRun> SparkPageRank(
    Context* ctx, uint64_t n,
    const std::vector<std::pair<uint64_t, uint64_t>>& edges, double damping,
    int iterations) {
  if (n == 0) return Status::InvalidArgument("graph has no vertices");
  // links: src -> adjacency list, hash partitioned and cached.
  auto partitioner = std::make_shared<HashPartitioner<uint64_t>>(
      ctx->default_parallelism());
  auto links = ToPair<uint64_t, uint64_t>(ctx->Parallelize(edges))
                   .GroupByKey(partitioner);
  links.Cache();
  size_t graph_bytes = links.AsRdd().Aggregate<size_t>(
      0,
      [](size_t acc, const std::pair<uint64_t, std::vector<uint64_t>>& rec) {
        return acc + EstimateSize(rec);
      },
      [](size_t a, size_t b) { return a + b; });

  // All vertices, co-partitioned with links, to keep rank entries for
  // vertices without in-links.
  std::vector<std::pair<uint64_t, char>> vertex_records;
  vertex_records.reserve(n);
  for (uint64_t v = 0; v < n; ++v) vertex_records.emplace_back(v, 0);
  auto vertices =
      ctx->ParallelizePairs<uint64_t, char>(vertex_records, partitioner);
  vertices.Cache();

  const double teleport = (1.0 - damping) / static_cast<double>(n);
  auto ranks = vertices.MapValues(
      [n](char) { return 1.0 / static_cast<double>(n); });

  PageRankRun run;
  run.graph_bytes = graph_bytes;
  for (int it = 0; it < iterations; ++it) {
    Stopwatch timer;
    // contribs: each page divides its rank over its out-links.
    auto contribs = ToPair<uint64_t, double>(
        links.Join(ranks).AsRdd().FlatMap(
            [](const std::pair<uint64_t,
                               std::pair<std::vector<uint64_t>, double>>&
                   rec) {
              const auto& [neighbors, rank] = rec.second;
              std::vector<std::pair<uint64_t, double>> out;
              out.reserve(neighbors.size());
              const double share =
                  rank / static_cast<double>(neighbors.size());
              for (uint64_t dst : neighbors) out.emplace_back(dst, share);
              return out;
            }));
    auto summed = contribs.ReduceByKey(
        [](const double& a, const double& b) { return a + b; }, partitioner);
    auto next = vertices.CoGroup(summed).MapValues(
        [damping, teleport](
            const std::pair<std::vector<char>, std::vector<double>>& sides) {
          double sum = 0;
          for (double c : sides.second) sum += c;
          return teleport + damping * sum;
        });
    ranks = next;
    ranks.Cache();
    // Action to materialize the iteration (and time it).
    auto collected = ranks.Collect();
    run.iteration_seconds.push_back(timer.ElapsedSeconds());
    if (it == iterations - 1) {
      run.ranks.assign(n, 0.0);
      for (const auto& [v, r] : collected) run.ranks[v] = r;
    }
  }
  return run;
}

Result<PageRankRun> GraphXPageRank(
    Context* ctx, uint64_t n,
    const std::vector<std::pair<uint64_t, uint64_t>>& edges, double damping,
    int iterations) {
  if (n == 0) return Status::InvalidArgument("graph has no vertices");
  auto partitioner = std::make_shared<HashPartitioner<uint64_t>>(
      ctx->default_parallelism());
  // Edge RDD keyed by src; out-degrees precomputed (GraphX's outerJoin
  // with degrees).
  auto edge_rdd = ToPair<uint64_t, uint64_t>(ctx->Parallelize(edges))
                      .PartitionBy(partitioner);
  edge_rdd.Cache();
  auto degrees =
      edge_rdd.MapValues([](const uint64_t&) { return uint64_t{1}; })
          .ReduceByKey(
              [](const uint64_t& a, const uint64_t& b) { return a + b; },
              partitioner);
  degrees.Cache();
  size_t graph_bytes = edges.size() * sizeof(std::pair<uint64_t, uint64_t>);

  std::vector<std::pair<uint64_t, char>> vertex_records;
  vertex_records.reserve(n);
  for (uint64_t v = 0; v < n; ++v) vertex_records.emplace_back(v, 0);
  auto vertices =
      ctx->ParallelizePairs<uint64_t, char>(vertex_records, partitioner);
  vertices.Cache();

  const double teleport = (1.0 - damping) / static_cast<double>(n);
  auto ranks = vertices.MapValues(
      [n](char) { return 1.0 / static_cast<double>(n); });

  PageRankRun run;
  run.graph_bytes = graph_bytes;
  for (int it = 0; it < iterations; ++it) {
    Stopwatch timer;
    // Triplet view: rank and degree joined onto every edge — a new
    // replicated-vertex RDD per iteration (the growth the paper notes).
    auto rank_deg = ranks.Join(degrees);
    auto triplets = edge_rdd.Join(rank_deg);
    auto messages =
        ToPair<uint64_t, double>(triplets.AsRdd().Map(
            [](const std::pair<uint64_t,
                               std::pair<uint64_t,
                                         std::pair<double, uint64_t>>>&
                   rec) {
              const uint64_t dst = rec.second.first;
              const auto& [rank, deg] = rec.second.second;
              return std::pair<uint64_t, double>(
                  dst, rank / static_cast<double>(deg));
            }));
    auto summed = messages.ReduceByKey(
        [](const double& a, const double& b) { return a + b; }, partitioner);
    auto next = vertices.CoGroup(summed).MapValues(
        [damping, teleport](
            const std::pair<std::vector<char>, std::vector<double>>& sides) {
          double sum = 0;
          for (double c : sides.second) sum += c;
          return teleport + damping * sum;
        });
    ranks = next;
    ranks.Cache();
    auto collected = ranks.Collect();
    run.iteration_seconds.push_back(timer.ElapsedSeconds());
    if (it == iterations - 1) {
      run.ranks.assign(n, 0.0);
      for (const auto& [v, r] : collected) run.ranks[v] = r;
    }
  }
  return run;
}

}  // namespace spangle
