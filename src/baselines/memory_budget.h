#ifndef SPANGLE_BASELINES_MEMORY_BUDGET_H_
#define SPANGLE_BASELINES_MEMORY_BUDGET_H_

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace spangle {

/// Models the paper's executor heap limits: baseline systems that
/// materialize dense or quadratic intermediates exceed their budget and
/// fail with OutOfMemory — the "X" marks in Fig. 10 and the MLlib
/// failures in Table III. Spangle runs under the same budget; it simply
/// never allocates those intermediates.
class MemoryBudget {
 public:
  /// `bytes` == 0 means unlimited.
  explicit MemoryBudget(uint64_t bytes = 0) : bytes_(bytes) {}

  uint64_t bytes() const { return bytes_; }

  Status Reserve(uint64_t need, const std::string& what) const {
    if (bytes_ != 0 && need > bytes_) {
      return Status::OutOfMemory(what + " needs " + HumanBytes(need) +
                                 " > budget " + HumanBytes(bytes_));
    }
    return Status::OK();
  }

 private:
  uint64_t bytes_;
};

}  // namespace spangle

#endif  // SPANGLE_BASELINES_MEMORY_BUDGET_H_
