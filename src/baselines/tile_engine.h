#ifndef SPANGLE_BASELINES_TILE_ENGINE_H_
#define SPANGLE_BASELINES_TILE_ENGINE_H_

#include <string>
#include <vector>

#include "baselines/memory_budget.h"
#include "workload/queries.h"
#include "workload/raster_gen.h"

namespace spangle {

/// RasterFrames-like baseline: one row per *tile*, where the tile size is
/// fixed at load to the regrid target grid (paper Sec. VII-B: "when
/// loading data for regridding, RasterFrames must previously fit the
/// chunk size into the target grid ... not flexible for other operators
/// but beneficial"). Tiles are dense; ingest happens on the driver and is
/// then spread to workers, as the paper notes of the real system.
class RasterFramesEngine : public RasterEngine {
 public:
  struct Tile {
    int64_t img = 0;
    int64_t tx = 0;  // tile origin in x
    int64_t ty = 0;  // tile origin in y
    uint32_t edge = 0;
    // values[b][dx*edge+dy], NaN = null.
    std::vector<std::vector<double>> bands;

    size_t SerializedBytes() const {
      size_t n = sizeof(Tile);
      for (const auto& b : bands) n += b.size() * sizeof(double);
      return n;
    }
  };

  /// `tile_edge` must equal the Q2 target grid for the fast-regrid
  /// behaviour the paper observed.
  static Result<RasterFramesEngine> Load(
      Context* ctx, const RasterData& data, uint32_t tile_edge,
      const MemoryBudget& budget = MemoryBudget());

  std::string name() const override { return "RasterFrames"; }
  Result<double> Q1Average(const QueryParams& q) override;
  Result<uint64_t> Q2Regrid(const QueryParams& q) override;
  Result<double> Q3FilteredAverage(const QueryParams& q) override;
  Result<uint64_t> Q4Polygons(const QueryParams& q) override;
  Result<uint64_t> Q5Density(const QueryParams& q) override;

 private:
  Result<size_t> BandIndex(const std::string& attr) const;

  /// Shared scan: fn(img, x, y, values_per_band) for every stored pixel.
  template <typename Acc, typename Seq, typename Merge>
  Acc Scan(Acc init, Seq seq, Merge merge) const {
    return tiles_.Aggregate<Acc>(init, std::move(seq), std::move(merge));
  }

  std::vector<std::string> attr_names_;
  uint32_t tile_edge_ = 0;
  Rdd<Tile> tiles_;
};

}  // namespace spangle

#endif  // SPANGLE_BASELINES_TILE_ENGINE_H_
