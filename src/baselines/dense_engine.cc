#include "baselines/dense_engine.h"

#include <cmath>
#include <map>
#include <unordered_map>

namespace spangle {

namespace {
inline bool InBox(int64_t img, int64_t x, int64_t y, const QueryParams& q) {
  if (!q.use_range) return true;
  return img >= q.lo[0] && img <= q.hi[0] && x >= q.lo[1] && x <= q.hi[1] &&
         y >= q.lo[2] && y <= q.hi[2];
}
}  // namespace

Result<SciSparkEngine> SciSparkEngine::Load(Context* ctx,
                                            const RasterData& data,
                                            const MemoryBudget& budget) {
  if (data.meta.num_dims() != 3) {
    return Status::InvalidArgument("SciSpark engine expects (img, x, y)");
  }
  SciSparkEngine engine;
  engine.attr_names_ = data.attr_names;
  engine.width_ = data.meta.dim(1).size;
  engine.height_ = data.meta.dim(2).size;
  const uint64_t images = data.meta.dim(0).size;
  const uint64_t plane = engine.width_ * engine.height_;
  // SciSpark loads each NetCDF variable as a dense ndarray before it can
  // split anything: the whole dense footprint must fit.
  const uint64_t need =
      images * data.attr_names.size() * plane * sizeof(double);
  SPANGLE_RETURN_NOT_OK(budget.Reserve(need, "dense image planes"));

  const double nan = std::nan("");
  std::vector<Frame> frames(images);
  for (uint64_t img = 0; img < images; ++img) {
    frames[img].img = static_cast<int64_t>(img);
    frames[img].bands.assign(data.attr_names.size(),
                             std::vector<double>(plane, nan));
  }
  for (size_t b = 0; b < data.cells.size(); ++b) {
    for (const auto& cell : data.cells[b]) {
      const uint64_t img = static_cast<uint64_t>(cell.pos[0]);
      frames[img].bands[b][static_cast<uint64_t>(cell.pos[1]) *
                               engine.height_ +
                           static_cast<uint64_t>(cell.pos[2])] = cell.value;
    }
  }
  engine.frames_ = ctx->Parallelize(std::move(frames));
  engine.frames_.Cache();
  return engine;
}

Result<size_t> SciSparkEngine::BandIndex(const std::string& attr) const {
  for (size_t b = 0; b < attr_names_.size(); ++b) {
    if (attr_names_[b] == attr) return b;
  }
  return Status::NotFound("no band '" + attr + "'");
}

Result<double> SciSparkEngine::Q1Average(const QueryParams& q) {
  SPANGLE_ASSIGN_OR_RETURN(size_t band, BandIndex(q.attr));
  const uint64_t h = height_, w = width_;
  struct SumCount {
    double sum = 0;
    uint64_t n = 0;
  };
  auto sc = frames_.Aggregate<SumCount>(
      SumCount{},
      [band, h, w, q](SumCount acc, const Frame& f) {
        // Dense scan: every pixel, valid or not.
        for (uint64_t x = 0; x < w; ++x) {
          for (uint64_t y = 0; y < h; ++y) {
            const double v = f.bands[band][x * h + y];
            if (std::isnan(v)) continue;
            if (!InBox(f.img, static_cast<int64_t>(x),
                       static_cast<int64_t>(y), q)) {
              continue;
            }
            acc.sum += v;
            acc.n += 1;
          }
        }
        return acc;
      },
      [](SumCount a, const SumCount& b) {
        a.sum += b.sum;
        a.n += b.n;
        return a;
      });
  return sc.n == 0 ? 0.0 : sc.sum / static_cast<double>(sc.n);
}

Result<uint64_t> SciSparkEngine::Q2Regrid(const QueryParams& q) {
  SPANGLE_ASSIGN_OR_RETURN(size_t band, BandIndex(q.attr));
  if (q.grid.size() != 3) {
    return Status::InvalidArgument("Q2 grid must be 3-dimensional");
  }
  const uint64_t h = height_, w = width_;
  const auto grid = q.grid;
  // Per-frame regrid, then a shuffle merges partial blocks across the
  // time axis.
  auto partials = frames_.FlatMap([band, h, w, q, grid](const Frame& f) {
    std::unordered_map<uint64_t, std::pair<double, uint64_t>> acc;
    for (uint64_t x = 0; x < w; ++x) {
      for (uint64_t y = 0; y < h; ++y) {
        const double v = f.bands[band][x * h + y];
        if (std::isnan(v)) continue;
        if (!InBox(f.img, static_cast<int64_t>(x), static_cast<int64_t>(y),
                   q)) {
          continue;
        }
        const uint64_t gi = static_cast<uint64_t>(f.img) / grid[0];
        const uint64_t gxx = x / grid[1];
        const uint64_t gyy = y / grid[2];
        const uint64_t key = (gi * (w / grid[1] + 1) + gxx) *
                                 (h / grid[2] + 1) +
                             gyy;
        auto& slot = acc[key];
        slot.first += v;
        slot.second += 1;
      }
    }
    std::vector<std::pair<uint64_t, std::pair<double, uint64_t>>> out(
        acc.begin(), acc.end());
    return out;
  });
  auto merged =
      ToPair<uint64_t, std::pair<double, uint64_t>>(std::move(partials))
          .ReduceByKey([](const std::pair<double, uint64_t>& a,
                          const std::pair<double, uint64_t>& b) {
            return std::pair<double, uint64_t>(a.first + b.first,
                                               a.second + b.second);
          });
  return merged.Count();
}

Result<double> SciSparkEngine::Q3FilteredAverage(const QueryParams& q) {
  SPANGLE_ASSIGN_OR_RETURN(size_t band, BandIndex(q.attr));
  const uint64_t h = height_, w = width_;
  const double threshold = q.threshold;
  struct SumCount {
    double sum = 0;
    uint64_t n = 0;
  };
  auto sc = frames_.Aggregate<SumCount>(
      SumCount{},
      [band, h, w, q, threshold](SumCount acc, const Frame& f) {
        for (uint64_t x = 0; x < w; ++x) {
          for (uint64_t y = 0; y < h; ++y) {
            const double v = f.bands[band][x * h + y];
            if (std::isnan(v) || v <= threshold) continue;
            if (!InBox(f.img, static_cast<int64_t>(x),
                       static_cast<int64_t>(y), q)) {
              continue;
            }
            acc.sum += v;
            acc.n += 1;
          }
        }
        return acc;
      },
      [](SumCount a, const SumCount& b) {
        a.sum += b.sum;
        a.n += b.n;
        return a;
      });
  return sc.n == 0 ? 0.0 : sc.sum / static_cast<double>(sc.n);
}

Result<uint64_t> SciSparkEngine::Q4Polygons(const QueryParams& q) {
  SPANGLE_ASSIGN_OR_RETURN(size_t band1, BandIndex(q.attr));
  SPANGLE_ASSIGN_OR_RETURN(size_t band2, BandIndex(q.attr2));
  const uint64_t h = height_, w = width_;
  const double t1 = q.threshold, t2 = q.threshold2;
  return frames_.Aggregate<uint64_t>(
      0,
      [band1, band2, h, w, q, t1, t2](uint64_t acc, const Frame& f) {
        for (uint64_t x = 0; x < w; ++x) {
          for (uint64_t y = 0; y < h; ++y) {
            const double v1 = f.bands[band1][x * h + y];
            const double v2 = f.bands[band2][x * h + y];
            if (std::isnan(v1) || v1 <= t1) continue;
            if (std::isnan(v2) || v2 <= t2) continue;
            if (!InBox(f.img, static_cast<int64_t>(x),
                       static_cast<int64_t>(y), q)) {
              continue;
            }
            ++acc;
          }
        }
        return acc;
      },
      [](uint64_t a, uint64_t b) { return a + b; });
}

Result<uint64_t> SciSparkEngine::Q5Density(const QueryParams& q) {
  SPANGLE_ASSIGN_OR_RETURN(size_t band, BandIndex(q.attr));
  if (q.grid.size() != 3) {
    return Status::InvalidArgument("Q5 grid must be 3-dimensional");
  }
  const uint64_t h = height_, w = width_;
  const auto grid = q.grid;
  auto partials = frames_.FlatMap([band, h, w, q, grid](const Frame& f) {
    std::unordered_map<uint64_t, uint64_t> acc;
    for (uint64_t x = 0; x < w; ++x) {
      for (uint64_t y = 0; y < h; ++y) {
        const double v = f.bands[band][x * h + y];
        if (std::isnan(v)) continue;
        if (!InBox(f.img, static_cast<int64_t>(x), static_cast<int64_t>(y),
                   q)) {
          continue;
        }
        const uint64_t gi = static_cast<uint64_t>(f.img) / grid[0];
        const uint64_t gxx = x / grid[1];
        const uint64_t gyy = y / grid[2];
        acc[(gi * (w / grid[1] + 1) + gxx) * (h / grid[2] + 1) + gyy] += 1;
      }
    }
    std::vector<std::pair<uint64_t, uint64_t>> out(acc.begin(), acc.end());
    return out;
  });
  auto merged = ToPair<uint64_t, uint64_t>(std::move(partials))
                    .ReduceByKey([](const uint64_t& a, const uint64_t& b) {
                      return a + b;
                    });
  const double cut = q.min_count;
  return merged.AsRdd().Aggregate<uint64_t>(
      0,
      [cut](uint64_t acc, const std::pair<uint64_t, uint64_t>& rec) {
        return acc + (static_cast<double>(rec.second) > cut ? 1 : 0);
      },
      [](uint64_t a, uint64_t b) { return a + b; });
}

}  // namespace spangle
