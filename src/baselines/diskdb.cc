#include "baselines/diskdb.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <unordered_map>

namespace spangle {

std::string UniqueDiskFileTag() {
  static std::atomic<uint64_t> counter{0};
  return std::to_string(static_cast<uint64_t>(::getpid())) + "_" +
         std::to_string(counter.fetch_add(1));
}

Result<SciDbEngine> SciDbEngine::Load(const RasterData& data,
                                      const std::string& dir) {
  if (data.meta.num_dims() != 3) {
    return Status::InvalidArgument("SciDB engine expects 3-d rasters");
  }
  SciDbEngine engine;
  engine.dir_ = dir;
  engine.attr_names_ = data.attr_names;
  engine.owns_files_ = true;
  const std::string tag = UniqueDiskFileTag();
  for (size_t a = 0; a < data.cells.size(); ++a) {
    const std::string path =
        dir + "/scidb_attr_" + tag + "_" + std::to_string(a) + ".bin";
    std::ofstream out(path, std::ios::binary);
    if (!out) return Status::IOError("cannot create " + path);
    // Cells sorted by coordinates: the store is coordinate-clustered.
    auto cells = data.cells[a];
    std::sort(cells.begin(), cells.end(),
              [](const CellValue& x, const CellValue& y) {
                return x.pos < y.pos;
              });
    for (const auto& cell : cells) {
      DiskCell dc;
      dc.pos[0] = cell.pos[0];
      dc.pos[1] = cell.pos[1];
      dc.pos[2] = cell.pos[2];
      dc.value = cell.value;
      out.write(reinterpret_cast<const char*>(&dc), sizeof(dc));
    }
    if (!out) return Status::IOError("write failed: " + path);
    engine.files_.push_back(path);
  }
  return engine;
}

SciDbEngine::~SciDbEngine() {
  if (owns_files_) {
    for (const auto& f : files_) std::remove(f.c_str());
  }
}

Result<size_t> SciDbEngine::AttrIndex(const std::string& attr) const {
  for (size_t a = 0; a < attr_names_.size(); ++a) {
    if (attr_names_[a] == attr) return a;
  }
  return Status::NotFound("no attribute '" + attr + "'");
}

Status SciDbEngine::ScanAttr(
    size_t attr, const QueryParams& q,
    const std::function<void(const DiskCell&)>& fn) const {
  std::ifstream in(files_[attr], std::ios::binary);
  if (!in) return Status::IOError("cannot open " + files_[attr]);
  DiskCell dc;
  while (in.read(reinterpret_cast<char*>(&dc), sizeof(dc))) {
    if (q.use_range) {
      // Predicate push-down: evaluated during the scan, nothing else
      // touches the filtered-out cells.
      bool inside = true;
      for (int d = 0; d < 3; ++d) {
        if (dc.pos[d] < q.lo[d] || dc.pos[d] > q.hi[d]) {
          inside = false;
          break;
        }
      }
      if (!inside) continue;
    }
    fn(dc);
  }
  return Status::OK();
}

Result<double> SciDbEngine::Q1Average(const QueryParams& q) {
  SPANGLE_ASSIGN_OR_RETURN(size_t attr, AttrIndex(q.attr));
  double sum = 0;
  uint64_t n = 0;
  SPANGLE_RETURN_NOT_OK(ScanAttr(attr, q, [&](const DiskCell& dc) {
    sum += dc.value;
    ++n;
  }));
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

Result<uint64_t> SciDbEngine::GroupToDiskAndCount(
    size_t attr, const QueryParams& q,
    const std::function<bool(double, uint64_t)>& keep) const {
  // Operator 1: scan + group, accumulating (sum, count) per block.
  std::unordered_map<uint64_t, std::pair<double, uint64_t>> groups;
  SPANGLE_RETURN_NOT_OK(ScanAttr(attr, q, [&](const DiskCell& dc) {
    const uint64_t key =
        ((static_cast<uint64_t>(dc.pos[0]) / q.grid[0]) * 1000003 +
         static_cast<uint64_t>(dc.pos[1]) / q.grid[1]) *
            1000003 +
        static_cast<uint64_t>(dc.pos[2]) / q.grid[2];
    auto& slot = groups[key];
    slot.first += dc.value;
    slot.second += 1;
  }));
  // Operator boundary: the grouped intermediate spills to disk before
  // the evaluating operator reads it back.
  const std::string tmp =
      dir_ + "/scidb_tmp_groups_" + UniqueDiskFileTag() + ".bin";
  {
    std::ofstream out(tmp, std::ios::binary);
    if (!out) return Status::IOError("cannot create " + tmp);
    for (const auto& [key, slot] : groups) {
      out.write(reinterpret_cast<const char*>(&key), sizeof(key));
      out.write(reinterpret_cast<const char*>(&slot), sizeof(slot));
    }
  }
  uint64_t kept = 0;
  {
    std::ifstream in(tmp, std::ios::binary);
    if (!in) return Status::IOError("cannot reopen " + tmp);
    uint64_t key = 0;
    std::pair<double, uint64_t> slot;
    while (in.read(reinterpret_cast<char*>(&key), sizeof(key)) &&
           in.read(reinterpret_cast<char*>(&slot), sizeof(slot))) {
      if (keep(slot.first, slot.second)) ++kept;
    }
  }
  std::remove(tmp.c_str());
  return kept;
}

Result<uint64_t> SciDbEngine::Q2Regrid(const QueryParams& q) {
  SPANGLE_ASSIGN_OR_RETURN(size_t attr, AttrIndex(q.attr));
  if (q.grid.size() != 3) {
    return Status::InvalidArgument("Q2 grid must be 3-dimensional");
  }
  return GroupToDiskAndCount(attr, q,
                             [](double, uint64_t n) { return n > 0; });
}

Result<double> SciDbEngine::Q3FilteredAverage(const QueryParams& q) {
  SPANGLE_ASSIGN_OR_RETURN(size_t attr, AttrIndex(q.attr));
  double sum = 0;
  uint64_t n = 0;
  const double threshold = q.threshold;
  SPANGLE_RETURN_NOT_OK(ScanAttr(attr, q, [&](const DiskCell& dc) {
    if (dc.value > threshold) {
      sum += dc.value;
      ++n;
    }
  }));
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

Result<uint64_t> SciDbEngine::Q4Polygons(const QueryParams& q) {
  SPANGLE_ASSIGN_OR_RETURN(size_t a1, AttrIndex(q.attr));
  SPANGLE_ASSIGN_OR_RETURN(size_t a2, AttrIndex(q.attr2));
  // Join of two attributes: the first pass materializes passing
  // positions; the second streams the other attribute against them.
  std::unordered_map<int64_t, std::unordered_map<int64_t, std::vector<int64_t>>>
      pass1;
  const double t1 = q.threshold;
  SPANGLE_RETURN_NOT_OK(ScanAttr(a1, q, [&](const DiskCell& dc) {
    if (dc.value > t1) pass1[dc.pos[0]][dc.pos[1]].push_back(dc.pos[2]);
  }));
  for (auto& [img, cols] : pass1) {
    for (auto& [x, ys] : cols) std::sort(ys.begin(), ys.end());
  }
  uint64_t count = 0;
  const double t2 = q.threshold2;
  SPANGLE_RETURN_NOT_OK(ScanAttr(a2, q, [&](const DiskCell& dc) {
    if (dc.value <= t2) return;
    auto img_it = pass1.find(dc.pos[0]);
    if (img_it == pass1.end()) return;
    auto col_it = img_it->second.find(dc.pos[1]);
    if (col_it == img_it->second.end()) return;
    if (std::binary_search(col_it->second.begin(), col_it->second.end(),
                           dc.pos[2])) {
      ++count;
    }
  }));
  return count;
}

Result<uint64_t> SciDbEngine::Q5Density(const QueryParams& q) {
  SPANGLE_ASSIGN_OR_RETURN(size_t attr, AttrIndex(q.attr));
  if (q.grid.size() != 3) {
    return Status::InvalidArgument("Q5 grid must be 3-dimensional");
  }
  const double cut = q.min_count;
  return GroupToDiskAndCount(attr, q, [cut](double, uint64_t n) {
    return static_cast<double>(n) > cut;
  });
}

}  // namespace spangle
