#include "baselines/mllib_lr.h"

#include <cmath>
#include <unordered_map>

#include "common/stopwatch.h"

namespace spangle {

namespace {

struct LabeledRow {
  std::vector<uint32_t> cols;
  std::vector<double> values;
  double label = 0;

  size_t SerializedBytes() const {
    return sizeof(LabeledRow) + cols.size() * 12;
  }
};

double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

Result<TrainResult> MllibTrainLogReg(Context* ctx, const SparseDataset& data,
                                     const MllibLrOptions& options,
                                     const MemoryBudget& budget) {
  if (data.labels.size() != data.rows) {
    return Status::InvalidArgument("label count != row count");
  }
  // Ingest: LabeledPoint objects with JVM overhead.
  const uint64_t raw_bytes = data.entries.size() * 12 + data.rows * 16;
  const uint64_t ingest_bytes = static_cast<uint64_t>(
      options.ingest_overhead * static_cast<double>(raw_bytes));
  SPANGLE_RETURN_NOT_OK(budget.Reserve(ingest_bytes, "LabeledPoint ingest"));
  // Dense gradient accumulators, one per executor.
  SPANGLE_RETURN_NOT_OK(budget.Reserve(
      data.features * sizeof(double) *
          static_cast<uint64_t>(ctx->default_parallelism()),
      "dense gradient accumulators"));

  std::unordered_map<uint64_t, LabeledRow> rows;
  for (const auto& e : data.entries) {
    auto& row = rows[e.row];
    row.cols.push_back(static_cast<uint32_t>(e.col));
    row.values.push_back(e.value);
  }
  std::vector<LabeledRow> flat(data.rows);
  for (auto& [r, row] : rows) {
    row.label = data.labels[r];
    flat[r] = std::move(row);
  }
  for (uint64_t r = 0; r < data.rows; ++r) flat[r].label = data.labels[r];
  auto rdd = ctx->Parallelize(std::move(flat));
  rdd.Cache();

  auto weights = std::make_shared<std::vector<double>>(data.features, 0.0);
  TrainResult result;
  Stopwatch total;
  const uint64_t n_rows = data.rows;
  for (int it = 0; it < options.max_iterations; ++it) {
    Stopwatch iter;
    // Full-batch gradient: every row, every iteration.
    auto grad = rdd.Aggregate<std::vector<double>>(
        std::vector<double>(data.features, 0.0),
        [weights](std::vector<double> g, const LabeledRow& row) {
          double z = 0;
          for (size_t i = 0; i < row.cols.size(); ++i) {
            z += row.values[i] * (*weights)[row.cols[i]];
          }
          const double diff = Sigmoid(z) - row.label;
          for (size_t i = 0; i < row.cols.size(); ++i) {
            g[row.cols[i]] += diff * row.values[i];
          }
          return g;
        },
        [](std::vector<double> a, const std::vector<double>& b) {
          for (size_t i = 0; i < a.size(); ++i) a[i] += b[i];
          return a;
        });
    double step_norm_sq = 0;
    auto next = std::make_shared<std::vector<double>>(*weights);
    for (uint64_t f = 0; f < data.features; ++f) {
      const double delta =
          -options.step_size * grad[f] / static_cast<double>(n_rows);
      (*next)[f] += delta;
      step_norm_sq += delta * delta;
    }
    weights = next;
    result.iteration_seconds.push_back(iter.ElapsedSeconds());
    result.iterations = it + 1;
    if (std::sqrt(step_norm_sq) < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.total_seconds = total.ElapsedSeconds();
  result.weights = *weights;
  return result;
}

}  // namespace spangle
