#ifndef SPANGLE_ENGINE_BLOCK_MANAGER_H_
#define SPANGLE_ENGINE_BLOCK_MANAGER_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "engine/metrics.h"
#include "engine/storage_level.h"

namespace spangle {

/// Identifies one cached partition: (lineage node id, partition index).
struct BlockId {
  uint64_t node = 0;
  int partition = 0;

  friend bool operator==(const BlockId& a, const BlockId& b) {
    return a.node == b.node && a.partition == b.partition;
  }
};

/// Storage configuration for a Context (Spark's spark.memory.* knobs).
struct StorageOptions {
  /// Total bytes of cached partitions held in memory across the whole
  /// context; 0 = unlimited. When full, least-recently-used blocks are
  /// evicted (dropped or spilled, per their storage level).
  uint64_t memory_budget_bytes = 0;
  /// Directory for spill files; "" creates (and owns) a unique temp dir.
  std::string spill_dir;
};

/// The context-owned block store (Spark's BlockManager): every cached
/// partition in the system — node caches and shuffle outputs — lives
/// here, keyed by (node, partition). The manager accounts each block's
/// estimated bytes, enforces the memory budget with LRU eviction, spills
/// MEMORY_AND_DISK blocks to length-prefixed files, and models executor
/// loss: each partition is "resident" on worker (partition % workers),
/// and FailExecutor(w) discards every block — memory and local disk —
/// that lived on w. Lost recomputable blocks are remembered so lineage
/// recomputation can be counted; lost shuffle blocks make their node
/// report !IsMaterialized(), which re-runs the shuffle before the next
/// action.
///
/// Thread safe. Payloads are shared_ptrs, so readers keep their data
/// alive even when the block is evicted underneath them.
class BlockManager {
 public:
  using DataPtr = std::shared_ptr<const void>;
  /// Writes a block payload to `path`; returns bytes written.
  using SpillFn = std::function<uint64_t(const void*, const std::string&)>;

  /// A payload read back from disk. `mapped_bytes` is how much of the
  /// payload is file-backed (mmap) rather than owned heap memory — those
  /// bytes stay outside the memory budget (the OS can drop and re-fault
  /// them at will, so evicting them frees nothing) and are reported in
  /// the bytes_mapped gauge instead. Implicitly constructible from a
  /// bare DataPtr so loaders that decode into owned structures keep
  /// their `return ptr;` shape.
  struct Loaded {
    DataPtr data;
    uint64_t mapped_bytes = 0;

    Loaded(DataPtr d) : data(std::move(d)) {}  // NOLINT(google-explicit-constructor)
    Loaded(DataPtr d, uint64_t mapped)
        : data(std::move(d)), mapped_bytes(mapped) {}
  };
  /// Reads a block payload back from `path`.
  using LoadFn = std::function<Loaded(const std::string&)>;

  struct GetResult {
    DataPtr data;           // null when the block is not available
    bool was_lost = false;  // block existed once but was dropped/evicted
                            // without a disk copy (caller recomputes)
  };

  BlockManager(const StorageOptions& options, int num_workers,
               EngineMetrics* metrics);
  ~BlockManager();

  BlockManager(const BlockManager&) = delete;
  BlockManager& operator=(const BlockManager&) = delete;

  /// Stores a block. `bytes` is its estimated in-memory size. `spill` /
  /// `load` may be null for unspillable record types; a null-spill
  /// MEMORY_AND_DISK block is treated as MEMORY_ONLY, and a null-spill
  /// non-recomputable block (shuffle output) is pinned in memory.
  /// Replaces any previous payload under the same id. `content_hash` is
  /// the block's content address (chunk-frame hash; 0 = unhashed) — it
  /// keys the dedup index consulted by PutIfAbsent.
  void Put(const BlockId& id, DataPtr data, uint64_t bytes, StorageLevel level,
           SpillFn spill, LoadFn load, bool recomputable = true,
           uint64_t content_hash = 0) EXCLUDES(mu_);

  /// Stores like Put, but keeps any payload already available (in memory
  /// or on disk) under the same id — the idempotent commit path used when
  /// duplicate computations of one partition race (speculative task
  /// attempts, concurrent jobs over a shared cached node, partial shuffle
  /// re-materialization). Returns false when an existing payload was kept,
  /// so the caller knows its copy was the discarded loser.
  ///
  /// When `content_hash` is nonzero the commit is content-addressed:
  /// keeping an identical existing payload (same id or a different id
  /// indexed under the same hash) counts a shuffle_block_dedup_hits; a
  /// different-id match stores no second copy — the new id shares the
  /// existing block's payload, its bytes accounted as unowned.
  bool PutIfAbsent(const BlockId& id, DataPtr data, uint64_t bytes,
                   StorageLevel level, SpillFn spill, LoadFn load,
                   bool recomputable = true, uint64_t content_hash = 0)
      EXCLUDES(mu_);

  /// Fetches a block: from memory (LRU touch), or from its spill file
  /// (counted as a disk read; re-admitted to memory unless DISK_ONLY).
  /// data == null means the caller must recompute from lineage.
  // spangle-lint: may-block — a spilled block is re-read from disk via
  // the (statically unresolvable) LoadFn callback.
  GetResult Get(const BlockId& id) EXCLUDES(mu_);

  /// True when the block is available in memory or on disk.
  bool Contains(const BlockId& id) const EXCLUDES(mu_);

  /// The content address the block was committed with; 0 when the block
  /// is absent, not committed, or was stored unhashed.
  uint64_t ContentHashOf(const BlockId& id) const EXCLUDES(mu_);

  /// True when all of `node`'s partitions [0, num_partitions) are
  /// available; shuffle nodes use this as their materialization check.
  bool ContainsAll(uint64_t node, int num_partitions) const EXCLUDES(mu_);

  /// Fault injection: discards one block (memory + disk) as if its
  /// executor died. No-op when the block does not exist.
  void DropBlock(const BlockId& id) EXCLUDES(mu_);

  /// Removes every block of `node` and forgets its history (unpersist;
  /// also called by the node's destructor).
  void DropNode(uint64_t node) EXCLUDES(mu_);

  /// Fault injection: drops every block resident on `worker`, memory and
  /// executor-local disk alike.
  void FailExecutor(int worker) EXCLUDES(mu_);

  /// The simulated placement: partition i lives on worker i % workers.
  int ExecutorOf(const BlockId& id) const {
    return id.partition % num_workers_;
  }

  uint64_t memory_budget() const { return budget_; }
  uint64_t bytes_in_memory() const EXCLUDES(mu_);
  /// Resident bytes that are file-backed or shared with a
  /// content-identical block — visible for tests; exported as the
  /// bytes_mapped gauge.
  uint64_t bytes_mapped() const EXCLUDES(mu_);
  size_t num_resident_blocks() const EXCLUDES(mu_);

 private:
  struct Block {
    DataPtr data;        // in-memory payload; null when evicted
    uint64_t bytes = 0;  // estimated in-memory size
    uint64_t unowned_bytes = 0;  // of `bytes`, how much is NOT owned heap:
                                 // file-backed mmap after a spill readback,
                                 // or shared with a content-identical block
                                 // (dedup). Unowned bytes don't count
                                 // against the budget and evicting a fully
                                 // unowned block frees nothing.
    uint64_t content_hash = 0;   // chunk-frame content address; 0 = unhashed
    StorageLevel level = StorageLevel::kMemoryOnly;
    bool on_disk = false;
    bool lost = false;         // dropped with no disk copy; next Get
                               // reports was_lost so recompute is counted
    bool recomputable = true;  // false = shuffle output (pinned when
                               // it cannot spill)
    std::string path;          // spill file, valid when on_disk
    SpillFn spill;
    LoadFn load;
    std::list<BlockId>::iterator lru_it;  // valid iff data != null
  };

  // All private helpers require mu_ (machine-checked via REQUIRES).
  void PutLocked(const BlockId& id, DataPtr data, uint64_t bytes,
                 StorageLevel level, SpillFn spill, LoadFn load,
                 bool recomputable, uint64_t content_hash,
                 uint64_t unowned_bytes) REQUIRES(mu_);
  Block* Find(const BlockId& id) REQUIRES(mu_);
  const Block* Find(const BlockId& id) const REQUIRES(mu_);
  void InsertResident(const BlockId& id, Block& b, DataPtr data)
      REQUIRES(mu_);
  void ReleaseMemory(Block& b) REQUIRES(mu_);
  void EvictToFit(uint64_t incoming, const BlockId& protect) REQUIRES(mu_);
  void EvictBlock(const BlockId& id, Block& b) REQUIRES(mu_);
  // spangle-lint: may-block — writes the payload through the SpillFn
  // callback (disk I/O the call graph cannot see). Spilling under mu_
  // is the documented eviction design; see DESIGN.md.
  void SpillBlock(const BlockId& id, Block& b) REQUIRES(mu_);
  void RemoveFile(Block& b) REQUIRES(mu_);
  void DropBlockLocked(const BlockId& id, Block& b) REQUIRES(mu_);
  std::string PathFor(const BlockId& id) REQUIRES(mu_);
  void UpdateGauges() REQUIRES(mu_);

  const uint64_t budget_;
  const int num_workers_;
  EngineMetrics* metrics_;
  std::string spill_dir_;           // set in the constructor, then const
  bool owns_spill_dir_ = false;     // set in the constructor, then const
  bool spill_dir_ready_ GUARDED_BY(mu_) = false;  // set lazily by PathFor

  // mu_ is a leaf-adjacent lock (rank kBlockManager): while held, the
  // only callouts are spill/load codecs, which take no engine locks.
  mutable Mutex mu_{LockRank::kBlockManager, "BlockManager::mu_"};
  // node id -> partition -> block.
  std::unordered_map<uint64_t, std::unordered_map<int, Block>> blocks_
      GUARDED_BY(mu_);
  // front = least recently used resident block
  std::list<BlockId> lru_ GUARDED_BY(mu_);
  // Owned resident bytes (budgeted) vs unowned (mapped/shared) bytes.
  uint64_t bytes_in_memory_ GUARDED_BY(mu_) = 0;
  uint64_t bytes_mapped_ GUARDED_BY(mu_) = 0;
  // Content address -> one block id committed with that hash. Entries go
  // stale when their block is dropped or replaced; lookups validate
  // against the live block and prune lazily.
  std::unordered_map<uint64_t, BlockId> content_index_ GUARDED_BY(mu_);
};

}  // namespace spangle

#endif  // SPANGLE_ENGINE_BLOCK_MANAGER_H_
