#include "engine/runtime_profile.h"

#include <cstdio>
#include <functional>
#include <sstream>
#include <unordered_set>

#include "common/bytes.h"
#include "engine/engine.h"

namespace spangle {

namespace {

const char* kModeNames[kProfileChunkModes] = {"dense", "sparse",
                                              "super-sparse"};

size_t DensityBucket(double density) {
  const auto& bounds = EngineMetrics::DensityBounds();
  size_t b = 0;
  while (b < bounds.size() && density > bounds[b]) ++b;
  return b;
}

std::string HumanUs(uint64_t us) {
  char buf[32];
  if (us < 1000) {
    std::snprintf(buf, sizeof(buf), "%lluus",
                  static_cast<unsigned long long>(us));
  } else if (us < 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(us) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(us) / 1e6);
  }
  return buf;
}

void AppendArrayStats(std::ostream& os, const std::string& indent,
                      const NodeProfileSnapshot& s) {
  if (s.TotalChunksBuilt() > 0) {
    os << indent << "chunk modes:";
    for (int m = 0; m < kProfileChunkModes; ++m) {
      if (s.chunks_built[m] > 0) {
        os << " " << kModeNames[m] << "=" << s.chunks_built[m];
      }
    }
    os << "\n";
  }
  if (s.TotalModeTransitions() > 0) {
    os << indent << "mode transitions:";
    for (int f = 0; f < kProfileChunkModes; ++f) {
      for (int t = 0; t < kProfileChunkModes; ++t) {
        const uint64_t n = s.mode_transitions[f * kProfileChunkModes + t];
        if (n > 0) {
          os << " " << kModeNames[f] << "->" << kModeNames[t] << "=" << n;
        }
      }
    }
    os << "\n";
  }
  if (s.TotalDensityObservations() > 0) {
    os << indent << "density hist (<=";
    const auto& bounds = EngineMetrics::DensityBounds();
    for (size_t b = 0; b < bounds.size(); ++b) {
      if (b > 0) os << ",";
      os << bounds[b];
    }
    os << ",inf): [";
    for (size_t b = 0; b < s.density_hist.size(); ++b) {
      if (b > 0) os << ",";
      os << s.density_hist[b];
    }
    os << "]\n";
  }
}

}  // namespace

NodeProfileSnapshot NodeProfileSnapshot::operator-(
    const NodeProfileSnapshot& rhs) const {
  NodeProfileSnapshot out;
  out.invocations = invocations - rhs.invocations;
  out.cache_hits = cache_hits - rhs.cache_hits;
  out.rows_in = rows_in - rhs.rows_in;
  out.rows_out = rows_out - rhs.rows_out;
  out.bytes_out = bytes_out - rhs.bytes_out;
  out.self_us = self_us - rhs.self_us;
  for (size_t i = 0; i < chunks_built.size(); ++i) {
    out.chunks_built[i] = chunks_built[i] - rhs.chunks_built[i];
  }
  for (size_t i = 0; i < mode_transitions.size(); ++i) {
    out.mode_transitions[i] = mode_transitions[i] - rhs.mode_transitions[i];
  }
  for (size_t i = 0; i < density_hist.size(); ++i) {
    out.density_hist[i] = density_hist[i] - rhs.density_hist[i];
  }
  return out;
}

NodeProfileSnapshot& NodeProfileSnapshot::operator+=(
    const NodeProfileSnapshot& rhs) {
  invocations += rhs.invocations;
  cache_hits += rhs.cache_hits;
  rows_in += rhs.rows_in;
  rows_out += rhs.rows_out;
  bytes_out += rhs.bytes_out;
  self_us += rhs.self_us;
  for (size_t i = 0; i < chunks_built.size(); ++i) {
    chunks_built[i] += rhs.chunks_built[i];
  }
  for (size_t i = 0; i < mode_transitions.size(); ++i) {
    mode_transitions[i] += rhs.mode_transitions[i];
  }
  for (size_t i = 0; i < density_hist.size(); ++i) {
    density_hist[i] += rhs.density_hist[i];
  }
  return *this;
}

uint64_t NodeProfileSnapshot::TotalChunksBuilt() const {
  uint64_t n = 0;
  for (uint64_t c : chunks_built) n += c;
  return n;
}

uint64_t NodeProfileSnapshot::TotalModeTransitions() const {
  uint64_t n = 0;
  for (uint64_t c : mode_transitions) n += c;
  return n;
}

uint64_t NodeProfileSnapshot::TotalDensityObservations() const {
  uint64_t n = 0;
  for (uint64_t c : density_hist) n += c;
  return n;
}

NodeProfile* RuntimeProfile::GetOrCreate(uint64_t node_id) {
  {
    // Hot path: per-partition profile lookups of already-seen nodes only
    // contend on a reader lock. The pointee outlives the lock (slots are
    // only removed by Clear, which callers must not race with live tasks).
    ReaderMutexLock lock(&mu_);
    auto it = nodes_.find(node_id);
    if (it != nodes_.end()) return it->second.get();
  }
  WriterMutexLock lock(&mu_);
  auto it = nodes_.find(node_id);
  if (it == nodes_.end()) {
    it = nodes_.emplace(node_id, std::make_unique<NodeProfile>()).first;
  }
  return it->second.get();
}

NodeProfileSnapshot RuntimeProfile::Snapshot(uint64_t node_id) const {
  NodeProfileSnapshot out;
  const NodeProfile* np = nullptr;
  {
    ReaderMutexLock lock(&mu_);
    auto it = nodes_.find(node_id);
    if (it == nodes_.end()) return out;
    np = it->second.get();
  }
  out.invocations = np->invocations.load(std::memory_order_relaxed);
  out.cache_hits = np->cache_hits.load(std::memory_order_relaxed);
  out.rows_in = np->rows_in.load(std::memory_order_relaxed);
  out.rows_out = np->rows_out.load(std::memory_order_relaxed);
  out.bytes_out = np->bytes_out.load(std::memory_order_relaxed);
  out.self_us = np->self_us.load(std::memory_order_relaxed);
  for (size_t i = 0; i < out.chunks_built.size(); ++i) {
    out.chunks_built[i] = np->chunks_built[i].load(std::memory_order_relaxed);
  }
  for (size_t i = 0; i < out.mode_transitions.size(); ++i) {
    out.mode_transitions[i] =
        np->mode_transitions[i].load(std::memory_order_relaxed);
  }
  for (size_t i = 0; i < out.density_hist.size(); ++i) {
    out.density_hist[i] = np->density_hist[i].load(std::memory_order_relaxed);
  }
  return out;
}

void RuntimeProfile::Clear() {
  {
    WriterMutexLock lock(&mu_);
    nodes_.clear();
  }
  MutexLock lock(&samples_mu_);
  samples_.clear();
}

void RuntimeProfile::RecordChunk(NodeProfile* np, int mode,
                                 uint64_t num_cells, uint64_t num_valid) {
  const double density =
      num_cells > 0
          ? static_cast<double>(num_valid) / static_cast<double>(num_cells)
          : 0.0;
  metrics_->chunk_density.Observe(density);
  if (np == nullptr || mode < 0 || mode >= kProfileChunkModes) return;
  np->chunks_built[mode].fetch_add(1, std::memory_order_relaxed);
  np->density_hist[DensityBucket(density)].fetch_add(
      1, std::memory_order_relaxed);
}

void RuntimeProfile::RecordModeTransition(NodeProfile* np, int from_mode,
                                          int to_mode) {
  metrics_->mode_transitions.fetch_add(1, std::memory_order_relaxed);
  if (np == nullptr || from_mode < 0 || from_mode >= kProfileChunkModes ||
      to_mode < 0 || to_mode >= kProfileChunkModes) {
    return;
  }
  np->mode_transitions[from_mode * kProfileChunkModes + to_mode].fetch_add(
      1, std::memory_order_relaxed);
}

void RuntimeProfile::RecordMaskDensity(NodeProfile* np, uint64_t set_bits,
                                       uint64_t num_bits) {
  const double density =
      num_bits > 0
          ? static_cast<double>(set_bits) / static_cast<double>(num_bits)
          : 0.0;
  metrics_->mask_density.Observe(density);
  if (np == nullptr) return;
  np->density_hist[DensityBucket(density)].fetch_add(
      1, std::memory_order_relaxed);
}

void RuntimeProfile::SampleCounters(uint64_t now_us) {
  CounterSample s;
  s.t_us = now_us;
  s.bytes_cached = metrics_->bytes_cached.load(std::memory_order_relaxed);
  s.shuffle_bytes = metrics_->shuffle_bytes.load(std::memory_order_relaxed);
  s.concurrent_shuffles =
      metrics_->concurrent_shuffles.load(std::memory_order_relaxed);
  MutexLock lock(&samples_mu_);
  while (samples_.size() >= kMaxCounterSamples) samples_.pop_front();
  samples_.push_back(s);
}

std::vector<RuntimeProfile::CounterSample> RuntimeProfile::CounterSamples()
    const {
  MutexLock lock(&samples_mu_);
  return std::vector<CounterSample>(samples_.begin(), samples_.end());
}

std::string AnalyzedPlan::ToString() const {
  std::ostringstream os;
  os << "== Analyzed plan";
  if (!action.empty()) os << ": " << action;
  os << " == wall=" << HumanUs(wall_us) << " stages=" << stages_run << "\n";
  for (const AnalyzedNode& n : nodes) {
    const std::string base(static_cast<size_t>(n.depth) * 3, ' ');
    os << base;
    if (n.depth > 0) os << "+- ";
    os << n.name << "#" << n.node_id << " [" << n.num_partitions << " parts";
    if (n.is_shuffle) {
      os << (n.was_materialized ? ", shuffle, skipped" : ", shuffle");
    }
    os << "]";
    if (n.reused) {
      os << " (reused above)\n";
      continue;
    }
    const NodeProfileSnapshot& a = n.actuals;
    os << " inv=" << a.invocations;
    if (a.cache_hits > 0) os << " cache_hits=" << a.cache_hits;
    os << " rows_in=" << a.rows_in << " rows_out=" << a.rows_out
       << " bytes_out=" << HumanBytes(a.bytes_out)
       << " self=" << HumanUs(a.self_us) << "\n";
    AppendArrayStats(os, base + (n.depth > 0 ? "   | " : "| "), a);
  }
  os << "totals: rows_out=" << totals.rows_out
     << " bytes_out=" << HumanBytes(totals.bytes_out)
     << " self=" << HumanUs(totals.self_us)
     << " chunks_built=" << totals.TotalChunksBuilt()
     << " mode_transitions=" << totals.TotalModeTransitions() << "\n";
  AppendArrayStats(os, "  ", totals);
  if (codec_bytes_raw > 0 || shuffle_block_dedup_hits > 0) {
    os << "codec: raw=" << HumanBytes(codec_bytes_raw)
       << " encoded=" << HumanBytes(codec_bytes_encoded) << " ("
       << (codec_bytes_raw > 0
               ? static_cast<double>(codec_bytes_encoded) /
                     static_cast<double>(codec_bytes_raw)
               : 0.0)
       << "x) encode=" << HumanUs(codec_encode_time_us)
       << " dedup_hits=" << shuffle_block_dedup_hits << "\n";
  }
  if (result_cache_hits > 0 || result_cache_misses > 0 ||
      admission_queued > 0 || admission_rejected > 0 || jobs_served > 0) {
    os << "serving: result_cache_hits=" << result_cache_hits
       << " result_cache_misses=" << result_cache_misses
       << " admission_queued=" << admission_queued
       << " admission_rejected=" << admission_rejected;
    if (jobs_served > 0) {
      const auto p = [](double us) {
        return HumanUs(static_cast<uint64_t>(us));
      };
      os << " jobs_served=" << jobs_served << " wait_p50/p95/p99="
         << p(job_wait_p50_us) << "/" << p(job_wait_p95_us) << "/"
         << p(job_wait_p99_us) << " run_p50/p95/p99=" << p(job_run_p50_us)
         << "/" << p(job_run_p95_us) << "/" << p(job_run_p99_us)
         << " e2e_p50/p95/p99=" << p(job_e2e_p50_us) << "/"
         << p(job_e2e_p95_us) << "/" << p(job_e2e_p99_us);
    }
    os << "\n";
  }
  if (rpc_roundtrips > 0 || executor_restarts > 0 || heartbeat_misses > 0) {
    os << "fleet: rpc_roundtrips=" << rpc_roundtrips
       << " sent=" << HumanBytes(rpc_bytes_sent)
       << " received=" << HumanBytes(rpc_bytes_received)
       << " remote_fetches=" << remote_shuffle_fetches
       << " restarts=" << executor_restarts
       << " heartbeat_misses=" << heartbeat_misses << "\n";
  }
  if (!stages.empty()) {
    os << "stages:\n";
    for (const StageStat& s : stages) os << "  " << s.ToString() << "\n";
  }
  return os.str();
}

const AnalyzedNode* AnalyzedPlan::Find(const std::string& name_substr) const {
  for (const AnalyzedNode& n : nodes) {
    if (n.name.find(name_substr) != std::string::npos) return &n;
  }
  return nullptr;
}

ProfiledRun::ProfiledRun(Context* ctx,
                         const std::vector<internal::NodeBase*>& roots,
                         std::string action)
    : ctx_(ctx), action_(std::move(action)) {
  prev_enabled_ = ctx_->profiling_enabled();
  ctx_->set_profiling_enabled(true);
  std::unordered_set<uint64_t> visited;
  std::function<void(internal::NodeBase*, int)> walk =
      [&](internal::NodeBase* n, int depth) {
        if (n == nullptr) return;
        AnalyzedNode an;
        an.node_id = n->id();
        an.name = n->name();
        an.depth = depth;
        an.num_partitions = n->num_partitions();
        an.is_shuffle = n->IsShuffle();
        an.was_materialized = an.is_shuffle && n->IsMaterialized();
        an.reused = visited.count(an.node_id) > 0;
        an.actuals = ctx_->profile().Snapshot(an.node_id);
        nodes_.push_back(std::move(an));
        if (nodes_.back().reused) return;
        visited.insert(n->id());
        for (internal::NodeBase* p : n->Parents()) walk(p, depth + 1);
      };
  for (internal::NodeBase* r : roots) walk(r, 0);
  const auto stats = ctx_->metrics().StageStats();
  if (!stats.empty()) {
    any_stage_before_ = true;
    max_stage_seq_before_ = stats.back().seq;
  }
  stages_before_ = ctx_->metrics().stages_run.load(std::memory_order_relaxed);
  codec_raw_before_ =
      ctx_->metrics().codec_bytes_raw.load(std::memory_order_relaxed);
  codec_encoded_before_ =
      ctx_->metrics().codec_bytes_encoded.load(std::memory_order_relaxed);
  codec_time_before_ =
      ctx_->metrics().codec_encode_time_us.load(std::memory_order_relaxed);
  dedup_hits_before_ = ctx_->metrics().shuffle_block_dedup_hits.load(
      std::memory_order_relaxed);
  cache_hits_before_ =
      ctx_->metrics().result_cache_hits.load(std::memory_order_relaxed);
  cache_misses_before_ =
      ctx_->metrics().result_cache_misses.load(std::memory_order_relaxed);
  adm_queued_before_ =
      ctx_->metrics().admission_queued.load(std::memory_order_relaxed);
  adm_rejected_before_ =
      ctx_->metrics().admission_rejected.load(std::memory_order_relaxed);
  jobs_served_before_ =
      ctx_->metrics().jobs_served.load(std::memory_order_relaxed);
  wait_buckets_before_ = ctx_->metrics().job_queue_wait_us.BucketCounts();
  run_buckets_before_ = ctx_->metrics().job_run_us.BucketCounts();
  e2e_buckets_before_ = ctx_->metrics().job_e2e_us.BucketCounts();
  rpc_roundtrips_before_ =
      ctx_->metrics().rpc_roundtrips.load(std::memory_order_relaxed);
  rpc_sent_before_ =
      ctx_->metrics().rpc_bytes_sent.load(std::memory_order_relaxed);
  rpc_received_before_ =
      ctx_->metrics().rpc_bytes_received.load(std::memory_order_relaxed);
  remote_fetches_before_ =
      ctx_->metrics().remote_shuffle_fetches.load(std::memory_order_relaxed);
  restarts_before_ =
      ctx_->metrics().executor_restarts.load(std::memory_order_relaxed);
  hb_misses_before_ =
      ctx_->metrics().heartbeat_misses.load(std::memory_order_relaxed);
  start_us_ = ctx_->NowMicros();
}

AnalyzedPlan ProfiledRun::Finish() {
  AnalyzedPlan plan;
  plan.action = action_;
  plan.wall_us = ctx_->NowMicros() - start_us_;
  plan.stages_run =
      ctx_->metrics().stages_run.load(std::memory_order_relaxed) -
      stages_before_;
  plan.codec_bytes_raw =
      ctx_->metrics().codec_bytes_raw.load(std::memory_order_relaxed) -
      codec_raw_before_;
  plan.codec_bytes_encoded =
      ctx_->metrics().codec_bytes_encoded.load(std::memory_order_relaxed) -
      codec_encoded_before_;
  plan.codec_encode_time_us =
      ctx_->metrics().codec_encode_time_us.load(std::memory_order_relaxed) -
      codec_time_before_;
  plan.shuffle_block_dedup_hits =
      ctx_->metrics().shuffle_block_dedup_hits.load(
          std::memory_order_relaxed) -
      dedup_hits_before_;
  plan.result_cache_hits =
      ctx_->metrics().result_cache_hits.load(std::memory_order_relaxed) -
      cache_hits_before_;
  plan.result_cache_misses =
      ctx_->metrics().result_cache_misses.load(std::memory_order_relaxed) -
      cache_misses_before_;
  plan.admission_queued =
      ctx_->metrics().admission_queued.load(std::memory_order_relaxed) -
      adm_queued_before_;
  plan.admission_rejected =
      ctx_->metrics().admission_rejected.load(std::memory_order_relaxed) -
      adm_rejected_before_;
  plan.jobs_served =
      ctx_->metrics().jobs_served.load(std::memory_order_relaxed) -
      jobs_served_before_;
  if (plan.jobs_served > 0) {
    // Percentiles over only this run's jobs: diff the cumulative bucket
    // counts, then interpolate on the diff.
    const auto diff = [](std::vector<uint64_t> after,
                         const std::vector<uint64_t>& before) {
      for (size_t i = 0; i < after.size() && i < before.size(); ++i) {
        after[i] -= before[i];
      }
      return after;
    };
    const auto& bounds = EngineMetrics::LatencyBoundsUs();
    const auto wait = diff(
        ctx_->metrics().job_queue_wait_us.BucketCounts(), wait_buckets_before_);
    const auto run =
        diff(ctx_->metrics().job_run_us.BucketCounts(), run_buckets_before_);
    const auto e2e =
        diff(ctx_->metrics().job_e2e_us.BucketCounts(), e2e_buckets_before_);
    plan.job_wait_p50_us = Histogram::PercentileFromCounts(bounds, wait, 0.50);
    plan.job_wait_p95_us = Histogram::PercentileFromCounts(bounds, wait, 0.95);
    plan.job_wait_p99_us = Histogram::PercentileFromCounts(bounds, wait, 0.99);
    plan.job_run_p50_us = Histogram::PercentileFromCounts(bounds, run, 0.50);
    plan.job_run_p95_us = Histogram::PercentileFromCounts(bounds, run, 0.95);
    plan.job_run_p99_us = Histogram::PercentileFromCounts(bounds, run, 0.99);
    plan.job_e2e_p50_us = Histogram::PercentileFromCounts(bounds, e2e, 0.50);
    plan.job_e2e_p95_us = Histogram::PercentileFromCounts(bounds, e2e, 0.95);
    plan.job_e2e_p99_us = Histogram::PercentileFromCounts(bounds, e2e, 0.99);
  }
  plan.rpc_roundtrips =
      ctx_->metrics().rpc_roundtrips.load(std::memory_order_relaxed) -
      rpc_roundtrips_before_;
  plan.rpc_bytes_sent =
      ctx_->metrics().rpc_bytes_sent.load(std::memory_order_relaxed) -
      rpc_sent_before_;
  plan.rpc_bytes_received =
      ctx_->metrics().rpc_bytes_received.load(std::memory_order_relaxed) -
      rpc_received_before_;
  plan.remote_shuffle_fetches =
      ctx_->metrics().remote_shuffle_fetches.load(std::memory_order_relaxed) -
      remote_fetches_before_;
  plan.executor_restarts =
      ctx_->metrics().executor_restarts.load(std::memory_order_relaxed) -
      restarts_before_;
  plan.heartbeat_misses =
      ctx_->metrics().heartbeat_misses.load(std::memory_order_relaxed) -
      hb_misses_before_;
  for (AnalyzedNode& an : nodes_) {
    const NodeProfileSnapshot after = ctx_->profile().Snapshot(an.node_id);
    an.actuals = after - an.actuals;
    if (!an.reused) plan.totals += an.actuals;
  }
  plan.nodes = std::move(nodes_);
  for (const StageStat& s : ctx_->metrics().StageStats()) {
    if (!any_stage_before_ || s.seq > max_stage_seq_before_) {
      plan.stages.push_back(s);
    }
  }
  ctx_->set_profiling_enabled(prev_enabled_);
  return plan;
}

}  // namespace spangle
