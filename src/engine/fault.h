#ifndef SPANGLE_ENGINE_FAULT_H_
#define SPANGLE_ENGINE_FAULT_H_

#include <cstdint>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace spangle {

/// Fault-tolerance knobs for a Context (Spark's spark.task.maxFailures /
/// spark.speculation family). Read at the start of every stage, so they
/// can be flipped between jobs (e.g. by tests) without a new Context.
struct FaultToleranceOptions {
  /// Retries per task *within* one stage execution before the job is
  /// declared failed. 0 disables retry (first failure is fatal).
  int max_task_retries = 3;
  /// Backoff before the first retry round, doubled every round after.
  uint64_t retry_backoff_us = 500;
  /// Times a job re-plans and re-runs after discovering mid-execution
  /// that shuffle input blocks were lost (executor death). Each round
  /// rebuilds the physical plan, so only stages whose output is actually
  /// gone re-materialize (lineage recovery at stage granularity).
  int max_job_attempts = 4;

  /// Speculative execution: re-launch a copy of a straggling task once
  /// its runtime exceeds `speculation_multiplier` x the median runtime of
  /// the stage's completed tasks. The first attempt to finish wins; the
  /// loser is discarded idempotently (it never re-runs the task body and
  /// block commits go through BlockManager::PutIfAbsent).
  bool speculation = false;
  double speculation_multiplier = 1.5;
  /// Never speculate a task running shorter than this (absolute floor).
  uint64_t speculation_min_runtime_us = 2000;
  /// Fraction of the stage that must have completed before medians are
  /// trusted enough to speculate.
  double speculation_min_completed_fraction = 0.5;
  /// How often the driver thread re-examines a running stage.
  uint64_t speculation_check_interval_us = 200;
};

/// Identity of one task attempt as seen by ChaosPolicy predicates: enough
/// to key deterministic fault decisions on *what* is running rather than
/// on wall-clock timing.
struct ChaosTaskInfo {
  std::string stage;      // stage name, e.g. "reduceByKey/map" or "collect"
  int stage_attempt = 0;  // 0 = first execution of this stage
  int task = 0;           // partition index within the stage
  int attempt = 0;        // cumulative attempt of this task (0 = first)
};

/// Deterministic fault-injection hooks, evaluated by the scheduler at the
/// start of every task attempt. Because every predicate is keyed on
/// (stage, stage_attempt, task, attempt), a policy describes *which work*
/// fails — independent of thread interleaving — which is what makes the
/// chaos suite's differential oracle reproducible from a seed. Null
/// members are skipped.
struct ChaosPolicy {
  /// Return true to kill this task attempt (thrown as TaskKilledError
  /// before the task body runs; the scheduler retries with backoff).
  std::function<bool(const ChaosTaskInfo&)> fail_task;
  /// Extra latency injected before the task body, microseconds. Used to
  /// manufacture stragglers for speculation tests. The sleep is
  /// interruptible: it ends early if another attempt of the same task
  /// wins in the meantime.
  std::function<uint64_t(const ChaosTaskInfo&)> delay_us;
  /// Return a worker id >= 0 to fail that executor (drop all its blocks,
  /// mid-job) when this task attempt starts; -1 for no failure.
  std::function<int(const ChaosTaskInfo&)> fail_executor;
};

/// Thrown when a task reads a shuffle output block that disappeared after
/// materialization (executor death mid-job). Not retryable at task level:
/// the scheduler must re-run the upstream stage(s) from lineage first.
class ShuffleBlockLostError : public std::runtime_error {
 public:
  explicit ShuffleBlockLostError(std::vector<uint64_t> nodes)
      : std::runtime_error(FormatMessage(nodes)), nodes_(std::move(nodes)) {}

  /// Lineage node ids whose shuffle output was found missing.
  const std::vector<uint64_t>& nodes() const { return nodes_; }

 private:
  static std::string FormatMessage(const std::vector<uint64_t>& nodes) {
    std::ostringstream os;
    os << "shuffle output block(s) lost for node(s)";
    for (uint64_t n : nodes) os << " #" << n;
    os << "; upstream stage must re-run from lineage";
    return os.str();
  }

  std::vector<uint64_t> nodes_;
};

/// Thrown by the chaos harness in place of a task body: models an
/// executor dying while running the task. Retryable.
class TaskKilledError : public std::runtime_error {
 public:
  TaskKilledError(const std::string& stage, int task, int attempt)
      : std::runtime_error("task " + stage + "[" + std::to_string(task) +
                           "] attempt " + std::to_string(attempt) +
                           " killed by chaos policy") {}
};

/// Thrown when a task's pre-execution dispatch to its executor daemon
/// fails (DISTRIBUTED mode): the daemon died between scheduling and
/// launch. Retryable — the fleet restarts a replacement before the retry
/// round re-dispatches.
class ExecutorLostError : public std::runtime_error {
 public:
  ExecutorLostError(const std::string& stage, int task,
                    const std::string& detail)
      : std::runtime_error("task " + stage + "[" + std::to_string(task) +
                           "] lost its executor daemon: " + detail) {}
};

/// Terminal job failure: retries and job attempts are exhausted.
class JobFailedError : public std::runtime_error {
 public:
  explicit JobFailedError(const std::string& what)
      : std::runtime_error(what) {}
};

}  // namespace spangle

#endif  // SPANGLE_ENGINE_FAULT_H_
