#ifndef SPANGLE_ENGINE_METRICS_H_
#define SPANGLE_ENGINE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace spangle {

/// Per-context execution counters. The paper's performance arguments are
/// about *what moves*: shuffle volume, stage counts, recomputation. These
/// counters let tests assert structural claims (e.g. "co-partitioned join
/// shuffles zero bytes") and let benches report simulated network cost.
class EngineMetrics {
 public:
  void Reset();

  std::atomic<uint64_t> tasks_run{0};
  std::atomic<uint64_t> stages_run{0};
  std::atomic<uint64_t> shuffles{0};
  std::atomic<uint64_t> shuffle_records{0};
  std::atomic<uint64_t> shuffle_bytes{0};
  std::atomic<uint64_t> recomputed_partitions{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};

  std::string ToString() const;
};

}  // namespace spangle

#endif  // SPANGLE_ENGINE_METRICS_H_
