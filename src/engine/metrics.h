#ifndef SPANGLE_ENGINE_METRICS_H_
#define SPANGLE_ENGINE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace spangle {

/// Where and when one task of a stage ran (times are microseconds on the
/// owning context's trace epoch).
struct TaskStat {
  int index = 0;
  int lane = 0;
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
  int attempt = 0;  // cumulative attempt of the task (0 = first launch)
};

/// One executed stage: identity, wall time, task-time distribution, skew,
/// and the shuffle bytes its tasks produced. Recorded by Context::RunStage
/// for every stage — shuffle map/reduce sides and action result stages
/// alike — and consumed by Explain-style reporting, tests, and the Chrome
/// trace exporter (Context::DumpTrace).
struct StageStat {
  /// Log-scale task-duration histogram bucket upper bounds (microseconds);
  /// the last bucket is open-ended.
  static constexpr std::array<uint64_t, 8> kHistBoundsUs = {
      10, 100, 1000, 10000, 100000, 1000000, 10000000, UINT64_MAX};

  uint64_t job_id = 0;   // 0 = outside any scheduler-submitted job
  uint64_t seq = 0;      // global stage sequence number (per context)
  std::string name;      // e.g. "reduceByKey/map", "collect"
  int attempt = 0;       // stage attempt: reruns of a lost shuffle stage
                         // (or job re-attempts of a result stage) count up
  int num_tasks = 0;
  uint64_t start_us = 0;
  uint64_t wall_us = 0;

  // Fault-tolerance accounting for this stage execution.
  int task_retries = 0;          // failed task attempts re-launched
  int speculative_launches = 0;  // straggler copies launched
  int speculative_wins = 0;      // tasks settled by a speculative copy

  // Task-time distribution.
  uint64_t min_task_us = 0;
  uint64_t max_task_us = 0;
  uint64_t total_task_us = 0;
  std::array<uint32_t, 8> task_hist{};  // counts per kHistBoundsUs bucket
  double skew_ratio = 0.0;              // max task time / mean task time
  int num_stragglers = 0;  // tasks slower than 2x the stage mean

  // Bytes/records this stage's tasks pushed through the shuffle write
  // path (zero for narrow/result stages).
  uint64_t shuffle_bytes = 0;
  uint64_t shuffle_records = 0;

  // Time this stage's tasks spent blocked fetching shuffle blocks from
  // executor daemons (zero in LOCAL mode).
  uint64_t remote_fetch_us = 0;

  // Per-task detail for trace export; the first num_tasks entries are the
  // primary attempts (slot per task), with retry/speculative attempts
  // appended after them (attempt > 0 ⇒ an extra lane in the trace).
  std::vector<TaskStat> tasks;

  std::string ToString() const;
};

/// What a registered metric measures. Counters only go up (until Reset),
/// gauges track a current level, timers are counters whose unit is
/// microseconds of accumulated time, histograms bucket observations.
enum class MetricKind { kCounter, kGauge, kTimer, kHistogram };

const char* MetricKindName(MetricKind kind);

/// Thread-safe fixed-bucket histogram: `bounds` are ascending inclusive
/// upper edges, with an implicit open overflow bucket after the last one
/// (BucketCounts() returns bounds().size() + 1 entries).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds)
      : bounds_(std::move(bounds)), bucket_counts_(bounds_.size() + 1) {}

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double v) {
    size_t b = 0;
    while (b < bounds_.size() && v > bounds_[b]) ++b;
    bucket_counts_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  void Reset() {
    for (auto& c : bucket_counts_) c.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<uint64_t> BucketCounts() const {
    std::vector<uint64_t> out;
    out.reserve(bucket_counts_.size());
    for (const auto& c : bucket_counts_) {
      out.push_back(c.load(std::memory_order_relaxed));
    }
    return out;
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Estimated q-quantile (0 < q <= 1) by linear interpolation inside the
  /// bucket holding the target rank; observations in the open overflow
  /// bucket clamp to the last bound. 0 with no observations. The static
  /// variant works on externally diffed bucket counts (per-query scoping).
  double Percentile(double q) const {
    return PercentileFromCounts(bounds_, BucketCounts(), q);
  }
  static double PercentileFromCounts(const std::vector<double>& bounds,
                                     const std::vector<uint64_t>& counts,
                                     double q);

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> bucket_counts_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// One registered metric: a stable name (snake_case, also the Prometheus
/// name suffix), unit ("count", "bytes", "us", "fraction"), help text,
/// and a pointer to the backing atomic or histogram. The pointers target
/// members of the owning EngineMetrics, so a registry entry is valid for
/// the metrics object's lifetime.
struct MetricDef {
  std::string name;
  std::string unit;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  std::atomic<uint64_t>* value = nullptr;  // scalar kinds
  Histogram* histogram = nullptr;          // kHistogram only
};

/// Typed metric registry: every EngineMetrics counter/gauge/timer/
/// histogram registers itself here exactly once, and Reset()/ToString()/
/// the JSON + Prometheus exporters iterate the registry — so adding a
/// metric in one place keeps every surface in sync by construction.
class MetricRegistry {
 public:
  void RegisterScalar(MetricKind kind, std::string name, std::string unit,
                      std::string help, std::atomic<uint64_t>* value);
  void RegisterHistogram(std::string name, std::string unit,
                         std::string help, Histogram* histogram);

  const std::vector<MetricDef>& metrics() const { return metrics_; }
  const MetricDef* Find(const std::string& name) const;

 private:
  std::vector<MetricDef> metrics_;
};

/// Per-context execution counters. The paper's performance arguments are
/// about *what moves*: shuffle volume, stage counts, recomputation. These
/// counters let tests assert structural claims (e.g. "co-partitioned join
/// shuffles zero bytes") and let benches report simulated network cost.
/// Since the DAG-scheduler refactor the metrics also retain a structured
/// per-stage log (StageStats) feeding Explain output and trace dumps; the
/// observability PR added the registry, histograms, and machine-readable
/// exporters (metrics_export.h).
class EngineMetrics {
 public:
  /// Inclusive upper edges for density-style histograms (fraction of
  /// valid cells in a chunk / set bits in a bitmask, 0..1).
  static const std::vector<double>& DensityBounds();

  /// Log-scale upper edges for heartbeat round-trip times (microseconds,
  /// loopback RPC scale).
  static const std::vector<double>& RttBoundsUs();

  /// Log-scale upper edges for serving-side job latencies (microseconds,
  /// queue wait through end-to-end).
  static const std::vector<double>& LatencyBoundsUs();

  EngineMetrics();

  EngineMetrics(const EngineMetrics&) = delete;
  EngineMetrics& operator=(const EngineMetrics&) = delete;

  void Reset();

  std::atomic<uint64_t> jobs_run{0};
  std::atomic<uint64_t> tasks_run{0};
  std::atomic<uint64_t> stages_run{0};
  std::atomic<uint64_t> shuffles{0};
  std::atomic<uint64_t> shuffle_records{0};
  std::atomic<uint64_t> shuffle_bytes{0};
  std::atomic<uint64_t> recomputed_partitions{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};

  // Scheduler concurrency: how many shuffle stages are materializing
  // right now (gauge, feeds the trace counter track) and the most ever
  // observed at the same instant (>= 2 proves stage overlap).
  std::atomic<uint64_t> concurrent_shuffles{0};
  std::atomic<uint64_t> peak_concurrent_shuffles{0};

  // Fault tolerance: mid-job recovery and straggler mitigation.
  std::atomic<uint64_t> task_retries{0};      // failed attempts re-launched
  std::atomic<uint64_t> stage_reruns{0};      // shuffle stages re-materialized
                                              // after their output was lost
  std::atomic<uint64_t> speculative_launches{0};  // straggler copies launched
  std::atomic<uint64_t> speculative_wins{0};  // tasks won by the copy

  // Storage subsystem (BlockManager) counters.
  std::atomic<uint64_t> bytes_cached{0};       // gauge: resident block bytes
  std::atomic<uint64_t> memory_high_water{0};  // max bytes_cached observed
  std::atomic<uint64_t> evictions{0};          // blocks evicted under budget
  std::atomic<uint64_t> spilled_bytes{0};      // bytes written to spill files
  std::atomic<uint64_t> disk_reads{0};         // blocks read back from disk
  std::atomic<uint64_t> bytes_mapped{0};       // gauge: resident block bytes
                                               // that are file-backed (mmap)
                                               // rather than owned — outside
                                               // the memory budget
  std::atomic<uint64_t> shuffle_block_dedup_hits{0};  // content-addressed
                                                      // commits folded into an
                                                      // identical stored block

  // Chunk-frame codec: raw (record-format) vs encoded bytes across every
  // partition encode, and the time spent encoding. The raw/encoded ratio
  // is the columnar compression win; both count the same partitions.
  std::atomic<uint64_t> codec_bytes_raw{0};
  std::atomic<uint64_t> codec_bytes_encoded{0};
  std::atomic<uint64_t> codec_encode_time_us{0};

  // Execution time: accumulated task CPU-occupancy time across all
  // stages (timer), plus a log-scale distribution of task durations.
  std::atomic<uint64_t> task_time_us{0};
  Histogram task_duration_us;

  // Distributed mode (net layer): RPC wire volume, roundtrips, shuffle
  // blocks pulled from executor daemons, daemon replacements after a
  // crash/kill, and heartbeat probes that went unanswered. All zero in
  // LOCAL mode.
  std::atomic<uint64_t> rpc_bytes_sent{0};
  std::atomic<uint64_t> rpc_bytes_received{0};
  std::atomic<uint64_t> rpc_roundtrips{0};
  std::atomic<uint64_t> remote_shuffle_fetches{0};
  std::atomic<uint64_t> executor_restarts{0};
  std::atomic<uint64_t> heartbeat_misses{0};
  std::atomic<uint64_t> remote_fetch_time_us{0};

  // Heartbeat round-trip time to executor daemons. Beyond health, the
  // RTT feeds the per-daemon clock-offset estimate (the RTT-midpoint
  // method) that aligns daemon span timestamps in merged traces.
  Histogram heartbeat_rtt_us;

  // Multi-tenant serving (JobServer): jobs accepted per session, jobs
  // whose admission was deferred because their memory estimate exceeded
  // the BlockManager headroom (counted once per deferred job), jobs
  // rejected outright because the estimate can never fit the budget, and
  // the shared lineage-digest result cache's hit/miss/eviction traffic.
  // All zero when no JobServer is attached to the context.
  std::atomic<uint64_t> jobs_submitted{0};
  std::atomic<uint64_t> jobs_served{0};  // completed (ok or failed)
  std::atomic<uint64_t> admission_queued{0};
  std::atomic<uint64_t> admission_rejected{0};
  std::atomic<uint64_t> result_cache_hits{0};
  std::atomic<uint64_t> result_cache_misses{0};
  std::atomic<uint64_t> result_cache_evictions{0};
  std::atomic<uint64_t> result_cache_bytes{0};  // gauge: cached payload bytes

  // Serving latency distributions across every session: time a job sat
  // queued before dispatch, time executing, and submit-to-done. The
  // JobServer also keeps per-session copies for the ExplainAnalyze
  // `serving:` percentiles.
  Histogram job_queue_wait_us;
  Histogram job_run_us;
  Histogram job_e2e_us;

  // Array-layer structure: chunk storage-mode conversions (dense ↔
  // sparse ↔ super-sparse), the density of chunks built during execution,
  // and the density of bitmasks produced by MaskRdd combinators — the
  // quantities behind the paper's Fig. 7/8 arguments.
  std::atomic<uint64_t> mode_transitions{0};
  Histogram chunk_density;
  Histogram mask_density;

  /// Credits shuffle volume to the global counters AND to the stage the
  /// calling task belongs to (registered via ScopedStageAccumulator).
  /// Shuffle writers must use these instead of touching the atomics so
  /// per-stage attribution stays correct under concurrent stages.
  void AddShuffleBytes(uint64_t bytes);
  void AddShuffleRecords(uint64_t n);

  /// Credits remote-fetch wait time globally and to the calling task's
  /// stage (same attribution contract as AddShuffleBytes).
  void AddRemoteFetchUs(uint64_t us);

  /// Raises peak_concurrent_shuffles to at least `v`.
  void RaisePeakConcurrentShuffles(uint64_t v);

  /// Per-stage shuffle-volume accumulator, bound to the running task's
  /// thread for the duration of the task body by Context::RunStage.
  struct StageAccumulator {
    std::atomic<uint64_t> shuffle_bytes{0};
    std::atomic<uint64_t> shuffle_records{0};
    std::atomic<uint64_t> remote_fetch_us{0};
  };
  class ScopedStageAccumulator {
   public:
    explicit ScopedStageAccumulator(StageAccumulator* acc);
    ~ScopedStageAccumulator();
    ScopedStageAccumulator(const ScopedStageAccumulator&) = delete;
    ScopedStageAccumulator& operator=(const ScopedStageAccumulator&) = delete;

   private:
    StageAccumulator* prev_;
  };

  /// Appends one stage record. Retention is a ring: past the cap the
  /// OLDEST record is dropped (counted in stage_stats_dropped), so a
  /// long-running context always keeps the most recent stages — the ones
  /// being debugged.
  void RecordStage(StageStat stat) EXCLUDES(stage_mu_);

  /// Snapshot of every retained stage record, in execution order.
  std::vector<StageStat> StageStats() const EXCLUDES(stage_mu_);

  uint64_t stage_stats_dropped() const {
    return stage_stats_dropped_.load(std::memory_order_relaxed);
  }

  /// Every registered metric (stable registration order).
  const MetricRegistry& registry() const { return registry_; }

  std::string ToString() const;

 private:
  static constexpr size_t kMaxStageStats = 8192;

  MetricRegistry registry_;

  // Innermost engine lock (rank kMetrics): nothing is acquired under it.
  mutable Mutex stage_mu_{LockRank::kMetrics, "EngineMetrics::stage_mu_"};
  std::deque<StageStat> stage_stats_ GUARDED_BY(stage_mu_);
  std::atomic<uint64_t> stage_stats_dropped_{0};
};

}  // namespace spangle

#endif  // SPANGLE_ENGINE_METRICS_H_
