#ifndef SPANGLE_ENGINE_METRICS_H_
#define SPANGLE_ENGINE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace spangle {

/// Per-context execution counters. The paper's performance arguments are
/// about *what moves*: shuffle volume, stage counts, recomputation. These
/// counters let tests assert structural claims (e.g. "co-partitioned join
/// shuffles zero bytes") and let benches report simulated network cost.
class EngineMetrics {
 public:
  void Reset();

  std::atomic<uint64_t> tasks_run{0};
  std::atomic<uint64_t> stages_run{0};
  std::atomic<uint64_t> shuffles{0};
  std::atomic<uint64_t> shuffle_records{0};
  std::atomic<uint64_t> shuffle_bytes{0};
  std::atomic<uint64_t> recomputed_partitions{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};

  // Storage subsystem (BlockManager) counters.
  std::atomic<uint64_t> bytes_cached{0};       // gauge: resident block bytes
  std::atomic<uint64_t> memory_high_water{0};  // max bytes_cached observed
  std::atomic<uint64_t> evictions{0};          // blocks evicted under budget
  std::atomic<uint64_t> spilled_bytes{0};      // bytes written to spill files
  std::atomic<uint64_t> disk_reads{0};         // blocks read back from disk

  std::string ToString() const;
};

}  // namespace spangle

#endif  // SPANGLE_ENGINE_METRICS_H_
