#include "engine/result_cache.h"

#include <utility>

namespace spangle {

std::optional<ResultCache::Entry> ResultCache::Get(uint64_t digest) {
  if (digest == 0) return std::nullopt;
  MutexLock lock(&mu_);
  const auto it = index_.find(digest);
  if (it == index_.end()) {
    if (metrics_ != nullptr) metrics_->result_cache_misses.fetch_add(1);
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // touch: move to front
  if (metrics_ != nullptr) metrics_->result_cache_hits.fetch_add(1);
  return it->second->entry;
}

void ResultCache::Put(uint64_t digest, Entry entry) {
  if (digest == 0 || entry.bytes > budget_) return;
  MutexLock lock(&mu_);
  if (index_.count(digest) != 0) return;  // first-wins
  while (bytes_ + entry.bytes > budget_ && !lru_.empty()) EvictLruLocked();
  bytes_ += entry.bytes;
  lru_.push_front(Node{digest, std::move(entry)});
  index_.emplace(digest, lru_.begin());
  UpdateGaugeLocked();
}

void ResultCache::Clear() {
  MutexLock lock(&mu_);
  while (!lru_.empty()) EvictLruLocked();
  UpdateGaugeLocked();
}

uint64_t ResultCache::bytes() const {
  MutexLock lock(&mu_);
  return bytes_;
}

size_t ResultCache::entries() const {
  MutexLock lock(&mu_);
  return lru_.size();
}

void ResultCache::EvictLruLocked() {
  const Node& victim = lru_.back();
  bytes_ -= victim.entry.bytes;
  index_.erase(victim.digest);
  lru_.pop_back();
  if (metrics_ != nullptr) {
    metrics_->result_cache_evictions.fetch_add(1);
  }
  UpdateGaugeLocked();
}

void ResultCache::UpdateGaugeLocked() {
  if (metrics_ != nullptr) {
    metrics_->result_cache_bytes.store(bytes_, std::memory_order_relaxed);
  }
}

}  // namespace spangle
