#ifndef SPANGLE_ENGINE_JOB_SERVER_H_
#define SPANGLE_ENGINE_JOB_SERVER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/engine.h"
#include "engine/result_cache.h"
#include "engine/size_estimator.h"

namespace spangle {

/// Multi-tenant serving front door for a Context.
///
/// Many sessions submit jobs concurrently; the server queues each job on
/// its session's FIFO and a small pool of dispatcher threads drains the
/// queues with three policies layered on top:
///
///  - **Fair share**: dispatchers pick the next job by weighted
///    round-robin over sessions — a session of weight w gets w
///    consecutive dispatch slots per cycle, so no tenant starves behind a
///    firehose neighbor and wait-time skew stays bounded by the weights.
///  - **Memory-aware admission**: each job carries a byte estimate
///    (declared, or derived from RuntimeProfile history via
///    EstimateJobBytes). A job is dispatched only while
///    `bytes_in_memory + committed estimates` stays under
///    `admit_watermark × BlockManager budget` — eviction pressure
///    backpressures admission, so concurrent materializations are capped
///    by *budget*, not by a count. A job whose estimate exceeds the whole
///    budget is rejected at Submit with Status::OutOfMemory; anything
///    else queues and eventually runs (when the server goes idle, the
///    head job is force-admitted so an over-pessimistic estimate can
///    never wedge the queue: queue-not-OOM, never deadlock).
///  - **Result reuse**: jobs submitted with a nonzero lineage digest
///    (internal::LineageDigest) share a ResultCache — digest-equal plans
///    from different sessions hit and skip execution entirely.
///
/// Jobs execute on the dispatcher thread with **no server lock held**,
/// bound to a fresh engine job id (internal::ScopedJobId), so every
/// served job's stages carry a unique StageStat::job_id and per-tenant
/// cost shows up in DumpTrace / ExplainAnalyze. Lock ranks: mu_ is
/// kJobServer (60), per-session queue_mu_ is kSessionQueue (58), the
/// shared cache is kResultCache (4) — see DESIGN.md §10.
class JobServer {
 public:
  struct Options {
    /// Dispatcher threads = max jobs materializing concurrently. The
    /// admission budget, not this count, is the memory cap.
    int dispatcher_threads = 4;
    /// Fraction of the BlockManager budget admission may commit to
    /// in-flight jobs before backpressuring (the eviction-pressure
    /// threshold). Ignored when the context has no memory budget.
    double admit_watermark = 0.85;
    /// Estimate assumed for jobs that declare none and have no profile
    /// history.
    uint64_t default_estimate_bytes = 1 << 20;
    /// Result-cache byte budget; 0 disables cross-session result reuse.
    uint64_t result_cache_bytes = 0;
    /// Start with dispatch paused (tests pre-fill queues, then Resume()
    /// for a deterministic drain order).
    bool start_paused = false;
  };

  struct SessionOptions {
    std::string name;
    int weight = 1;  // weighted round-robin share, clamped to >= 1
  };

  using SessionId = uint64_t;
  using JobId = uint64_t;

  /// A finished job's payload: a type-erased result plus its byte size
  /// (cache accounting). SubmitCollect wraps Collect() results this way;
  /// raw Submit callers build their own.
  struct Payload {
    std::shared_ptr<const void> data;
    uint64_t bytes = 0;
  };

  /// Job body. Runs on a dispatcher thread with no server lock held and
  /// an engine job id bound. May throw (the engine throws on final,
  /// unrecoverable job failure) — the server converts to Status.
  using JobFn = std::function<Result<Payload>()>;

  struct SubmitOptions {
    std::string label;            // diagnostics; defaults to the plan name
    uint64_t estimate_bytes = 0;  // 0 → profile history / server default
    uint64_t digest = 0;          // 0 → bypass the result cache
  };

  /// Per-tenant accounting, attributed at dispatch/completion.
  struct SessionStats {
    std::string name;
    int weight = 1;
    uint64_t submitted = 0;
    uint64_t dispatched = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t cache_hits = 0;  // jobs served from the result cache
    uint64_t deferred = 0;    // jobs that waited on admission at least once
    uint64_t wait_us = 0;     // total submit → dispatch
    uint64_t run_us = 0;      // total dispatch → completion
    // Latency percentile estimates (us) over this session's finished
    // jobs, from per-session fixed-bucket histograms (EngineMetrics::
    // LatencyBoundsUs edges; see Histogram::Percentile). wait = submit →
    // dispatch, run = dispatch → done, e2e = submit → done. Cache hits
    // count too — a hit's run time is the cache lookup.
    double wait_p50_us = 0, wait_p95_us = 0, wait_p99_us = 0;
    double run_p50_us = 0, run_p95_us = 0, run_p99_us = 0;
    double e2e_p50_us = 0, e2e_p95_us = 0, e2e_p99_us = 0;
    /// Engine job ids this session's jobs ran under — joins per-tenant
    /// cost against StageStat::job_id in DumpTrace. Cache hits run no
    /// engine job and contribute no id.
    std::vector<uint64_t> engine_job_ids;
  };

  /// Per-job view for latency accounting and result pickup.
  struct JobInfo {
    SessionId session = 0;
    std::string label;
    bool done = false;
    bool cache_hit = false;
    Status status;       // meaningful once done
    uint64_t wait_us = 0;  // submit → dispatch
    uint64_t run_us = 0;   // dispatch → done
  };

  // Overloads rather than `= {}` defaults: GCC rejects brace-init default
  // arguments of nested structs with member initializers inside the
  // enclosing class body.
  JobServer(Context* ctx, Options opts);
  explicit JobServer(Context* ctx) : JobServer(ctx, Options()) {}
  ~JobServer();  // Shutdown()

  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  /// Registers a tenant session. Sessions live for the server's lifetime.
  SessionId OpenSession(SessionOptions opts) EXCLUDES(mu_);
  SessionId OpenSession() { return OpenSession(SessionOptions()); }

  /// Queues a job on `session`. Returns Status::OutOfMemory without
  /// queueing when the estimate can never be admitted (exceeds the whole
  /// memory budget), InvalidArgument for an unknown session,
  /// FailedPrecondition after Shutdown.
  Result<JobId> Submit(SessionId session, JobFn fn, SubmitOptions opts)
      EXCLUDES(mu_);
  Result<JobId> Submit(SessionId session, JobFn fn) {
    return Submit(session, std::move(fn), SubmitOptions());
  }

  /// Convenience: submit `rdd.Collect()` as a job. Fills in the digest
  /// (LineageDigest), the estimate (profile history via EstimateJobBytes)
  /// and the label from the plan unless overridden in `opts`. Retrieve
  /// with Collect<T>(job).
  template <typename T>
  Result<JobId> SubmitCollect(SessionId session, Rdd<T> rdd) {
    return SubmitCollect(session, std::move(rdd), SubmitOptions());
  }
  template <typename T>
  Result<JobId> SubmitCollect(SessionId session, Rdd<T> rdd,
                              SubmitOptions opts) {
    if (opts.digest == 0) opts.digest = rdd.LineageDigest();
    if (opts.estimate_bytes == 0) {
      opts.estimate_bytes = EstimateJobBytes(ctx_, rdd.node());
    }
    if (opts.label.empty()) opts.label = rdd.node()->name();
    return Submit(
        session,
        [rdd]() -> Result<Payload> {
          auto rows =
              std::make_shared<const std::vector<T>>(rdd.Collect());
          Payload p;
          p.bytes = EstimateSize(*rows);
          p.data = std::shared_ptr<const void>(rows, rows.get());
          return p;
        },
        std::move(opts));
  }

  /// Blocks until `job` finishes; returns its status.
  Status Wait(JobId job) EXCLUDES(mu_);

  /// Blocks until every submitted job has finished. Asserts the server is
  /// not paused (a paused server would never drain).
  void WaitAll() EXCLUDES(mu_);

  /// The finished job's payload (empty until done).
  Payload ResultPayload(JobId job) EXCLUDES(mu_);

  /// Typed result pickup for SubmitCollect<T> jobs. Digest-equality
  /// guarantees type-equality, so the cast back is sound for cache hits
  /// too. Fails with the job's status when the job failed.
  template <typename T>
  Result<std::shared_ptr<const std::vector<T>>> Collect(JobId job) {
    Status st = Wait(job);
    SPANGLE_RETURN_NOT_OK(st);
    return std::static_pointer_cast<const std::vector<T>>(
        ResultPayload(job).data);
  }

  /// Pause/resume dispatch. Queued and new submissions hold until
  /// Resume(); jobs already executing finish normally.
  void Pause() EXCLUDES(mu_);
  void Resume() EXCLUDES(mu_);

  /// Stops dispatch, fails still-queued jobs with FailedPrecondition,
  /// joins the dispatchers. Running jobs complete first. Idempotent.
  void Shutdown() EXCLUDES(mu_);

  SessionStats Stats(SessionId session) const EXCLUDES(mu_);
  JobInfo Info(JobId job) const EXCLUDES(mu_);

  /// (session, job) pairs in dispatch order — the fairness tests' probe.
  std::vector<std::pair<SessionId, JobId>> DispatchLog() const EXCLUDES(mu_);

  /// Bytes of in-flight admission estimates (test/diagnostic hook).
  uint64_t committed_bytes() const EXCLUDES(mu_);

  ResultCache* result_cache() { return cache_.get(); }

 private:
  /// One queued/running/finished job. Fields are written either under
  /// mu_ (before dispatch / at completion) or by the one dispatcher
  /// thread that owns the job while it runs (fn/payload/status staging),
  /// never both at once — same ownership discipline as ExecutorPool's
  /// slots, so they carry no GUARDED_BY.
  struct Job {
    JobId id = 0;
    SessionId session = 0;
    std::string label;
    JobFn fn;
    uint64_t estimate = 0;
    uint64_t digest = 0;
    uint64_t submit_us = 0;
    uint64_t dispatch_us = 0;
    uint64_t done_us = 0;
    bool deferred_counted = false;  // admission_queued tallied once
    bool done = false;
    bool cache_hit = false;
    Status status;
    Payload payload;
  };

  /// One tenant. queue_mu_ (rank kSessionQueue) guards the FIFO and the
  /// stats; it is only ever acquired under mu_ or alone.
  struct Session {
    Session(SessionId id_in, SessionOptions o)
        : id(id_in),
          name(o.name.empty() ? "session-" + std::to_string(id_in)
                              : std::move(o.name)),
          weight(o.weight < 1 ? 1 : o.weight) {}

    const SessionId id;
    const std::string name;
    const int weight;

    mutable Mutex queue_mu{LockRank::kSessionQueue, "Session::queue_mu"};
    std::deque<JobId> queue GUARDED_BY(queue_mu);
    uint64_t submitted GUARDED_BY(queue_mu) = 0;
    uint64_t dispatched GUARDED_BY(queue_mu) = 0;
    uint64_t completed GUARDED_BY(queue_mu) = 0;
    uint64_t failed GUARDED_BY(queue_mu) = 0;
    uint64_t cache_hits GUARDED_BY(queue_mu) = 0;
    uint64_t deferred GUARDED_BY(queue_mu) = 0;
    uint64_t wait_us GUARDED_BY(queue_mu) = 0;
    uint64_t run_us GUARDED_BY(queue_mu) = 0;
    std::vector<uint64_t> engine_job_ids GUARDED_BY(queue_mu);

    // Internally atomic (no guard): per-session latency distributions
    // behind the SessionStats percentiles. The context-wide copies live
    // in EngineMetrics (job_queue_wait_us / job_run_us / job_e2e_us).
    Histogram wait_hist{EngineMetrics::LatencyBoundsUs()};
    Histogram run_hist{EngineMetrics::LatencyBoundsUs()};
    Histogram e2e_hist{EngineMetrics::LatencyBoundsUs()};
  };

  void DispatcherLoop();
  /// WRR scan: next admissible job, popped from its session queue and
  /// marked dispatched; nullptr when nothing is admissible right now.
  Job* PickAndAdmitLocked() REQUIRES(mu_);
  bool AdmitLocked(const Job& job) const REQUIRES(mu_);
  void AdvanceCursorLocked() REQUIRES(mu_);
  void ExecuteJob(Job* job) EXCLUDES(mu_);
  Session* SessionLocked(SessionId id) const REQUIRES(mu_);

  Context* const ctx_;
  const Options opts_;
  std::unique_ptr<ResultCache> cache_;  // null when disabled

  // Rank kJobServer: holds session queue locks (kSessionQueue) and calls
  // BlockManager accessors (kBlockManager) while held; never held across
  // job execution.
  mutable Mutex mu_{LockRank::kJobServer, "JobServer::mu_"};
  CondVar work_cv_;  // dispatchers: new work / freed headroom / resume
  CondVar done_cv_;  // waiters: a job finished

  std::vector<std::unique_ptr<Session>> sessions_ GUARDED_BY(mu_);
  std::unordered_map<JobId, std::unique_ptr<Job>> jobs_ GUARDED_BY(mu_);
  std::vector<std::pair<SessionId, JobId>> dispatch_log_ GUARDED_BY(mu_);

  uint64_t next_job_id_ GUARDED_BY(mu_) = 0;
  size_t rr_index_ GUARDED_BY(mu_) = 0;    // WRR cursor into sessions_
  int rr_credits_ GUARDED_BY(mu_) = 0;     // dispatch slots left at cursor
  uint64_t committed_ GUARDED_BY(mu_) = 0;  // sum of running estimates
  int running_ GUARDED_BY(mu_) = 0;
  uint64_t outstanding_ GUARDED_BY(mu_) = 0;  // submitted, not yet done
  bool paused_ GUARDED_BY(mu_) = false;
  bool shutdown_ GUARDED_BY(mu_) = false;

  std::vector<std::thread> dispatchers_;
};

/// Admission estimate for materializing `root`'s plan: per node, profile
/// history when the node has executed before (mean bytes_out per
/// invocation × partitions — re-submitting a served plan gets real
/// numbers), else `default_per_partition` × partitions. Already-cached
/// shuffle outputs still count (conservative).
uint64_t EstimateJobBytes(Context* ctx, internal::NodeBase* root,
                          uint64_t default_per_partition = 64 * 1024);

}  // namespace spangle

#endif  // SPANGLE_ENGINE_JOB_SERVER_H_
