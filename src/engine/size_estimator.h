#ifndef SPANGLE_ENGINE_SIZE_ESTIMATOR_H_
#define SPANGLE_ENGINE_SIZE_ESTIMATOR_H_

#include <cstddef>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace spangle {

/// Estimated wire size of a record, used to account shuffle volume.
/// Types with a `size_t SerializedBytes() const` member (e.g. Chunk)
/// report their payload+mask footprint; everything else falls back to
/// sizeof, with overloads for the common composites.
template <typename T>
concept HasSerializedBytes = requires(const T& t) {
  { t.SerializedBytes() } -> std::convertible_to<size_t>;
};

// Forward declarations so the composite overloads can see each other
// (ADL cannot find them for std:: types).
inline size_t EstimateSize(const std::string& v);
template <typename A, typename B>
size_t EstimateSize(const std::pair<A, B>& v);
template <typename E>
size_t EstimateSize(const std::vector<E>& v);

template <typename T>
size_t EstimateSize(const T& v) {
  if constexpr (HasSerializedBytes<T>) {
    return v.SerializedBytes();
  } else {
    return sizeof(T);
  }
}

inline size_t EstimateSize(const std::string& v) {
  return sizeof(std::string) + v.size();
}

template <typename A, typename B>
size_t EstimateSize(const std::pair<A, B>& v) {
  return EstimateSize(v.first) + EstimateSize(v.second);
}

template <typename E>
size_t EstimateSize(const std::vector<E>& v) {
  size_t total = sizeof(std::vector<E>);
  for (const auto& e : v) total += EstimateSize(e);
  return total;
}

}  // namespace spangle

#endif  // SPANGLE_ENGINE_SIZE_ESTIMATOR_H_
