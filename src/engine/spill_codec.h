#ifndef SPANGLE_ENGINE_SPILL_CODEC_H_
#define SPANGLE_ENGINE_SPILL_CODEC_H_

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace spangle {
namespace spill {

/// Types carrying their own binary codec: AppendTo(std::string*) plus a
/// static FromBytes(data, size, *consumed) returning a Result. Chunk,
/// Bitmask and VecBlock all satisfy this.
template <typename T>
concept HasByteCodec = requires(const T& t, std::string* out, const char* d,
                                size_t n, size_t* c) {
  { t.AppendTo(out) };
  { T::FromBytes(d, n, c).ok() } -> std::convertible_to<bool>;
};

template <typename T>
struct SpillableTrait
    : std::bool_constant<std::is_trivially_copyable_v<T> || HasByteCodec<T>> {
};
template <>
struct SpillableTrait<std::string> : std::true_type {};
template <typename A, typename B>
struct SpillableTrait<std::pair<A, B>>
    : std::bool_constant<SpillableTrait<A>::value && SpillableTrait<B>::value> {
};
template <typename E>
struct SpillableTrait<std::vector<E>> : SpillableTrait<E> {};

/// True when a std::vector<T> partition can be written to a spill file
/// and read back bit-exactly. Storage levels that touch disk require
/// this; for other types they degrade to MEMORY_ONLY (recompute).
template <typename T>
inline constexpr bool kSpillable = SpillableTrait<T>::value;

namespace detail {
template <typename T>
struct IsPair : std::false_type {};
template <typename A, typename B>
struct IsPair<std::pair<A, B>> : std::true_type {};
template <typename T>
struct IsVector : std::false_type {};
template <typename E>
struct IsVector<std::vector<E>> : std::true_type {};
}  // namespace detail

/// Appends one record's binary encoding to `out`. The inverse of
/// Decode<T>; record framing (length prefixes between records) is the
/// caller's job. The if-constexpr ladder must stay in sync with Decode.
template <typename T>
void Encode(const T& v, std::string* out) {
  static_assert(kSpillable<T>, "record type has no spill codec");
  if constexpr (std::is_same_v<T, std::string>) {
    const uint32_t n = static_cast<uint32_t>(v.size());
    out->append(reinterpret_cast<const char*>(&n), sizeof(n));
    out->append(v);
  } else if constexpr (detail::IsPair<T>::value) {
    Encode(v.first, out);
    Encode(v.second, out);
  } else if constexpr (detail::IsVector<T>::value) {
    const uint32_t n = static_cast<uint32_t>(v.size());
    out->append(reinterpret_cast<const char*>(&n), sizeof(n));
    for (const auto& e : v) Encode(e, out);
  } else if constexpr (std::is_trivially_copyable_v<T>) {
    out->append(reinterpret_cast<const char*>(&v), sizeof(T));
  } else {
    v.AppendTo(out);
  }
}

/// Decodes one record from data[0, size); adds the bytes read to
/// *consumed. CHECK-fails on malformed input (spill files are
/// engine-written, so corruption is a bug, not user error).
template <typename T>
T Decode(const char* data, size_t size, size_t* consumed) {
  static_assert(kSpillable<T>, "record type has no spill codec");
  if constexpr (std::is_same_v<T, std::string>) {
    uint32_t n = 0;
    SPANGLE_CHECK_GE(size, sizeof(n)) << "truncated spill record";
    std::memcpy(&n, data, sizeof(n));
    SPANGLE_CHECK_GE(size - sizeof(n), n) << "truncated spill record";
    *consumed += sizeof(n) + n;
    return std::string(data + sizeof(n), n);
  } else if constexpr (detail::IsPair<T>::value) {
    size_t used = 0;
    auto first = Decode<typename T::first_type>(data, size, &used);
    size_t used2 = 0;
    auto second =
        Decode<typename T::second_type>(data + used, size - used, &used2);
    *consumed += used + used2;
    return T(std::move(first), std::move(second));
  } else if constexpr (detail::IsVector<T>::value) {
    uint32_t n = 0;
    SPANGLE_CHECK_GE(size, sizeof(n)) << "truncated spill record";
    std::memcpy(&n, data, sizeof(n));
    size_t used = sizeof(n);
    T out;
    out.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      out.push_back(
          Decode<typename T::value_type>(data + used, size - used, &used));
    }
    *consumed += used;
    return out;
  } else if constexpr (std::is_trivially_copyable_v<T>) {
    SPANGLE_CHECK_GE(size, sizeof(T)) << "truncated spill record";
    T v;
    std::memcpy(&v, data, sizeof(T));
    *consumed += sizeof(T);
    return v;
  } else {
    size_t used = 0;
    auto r = T::FromBytes(data, size, &used);
    SPANGLE_CHECK(r.ok()) << "corrupt spill record: " << r.status().ToString();
    *consumed += used;
    return std::move(*r);
  }
}

/// Writes one partition to `path` in the disk_persist.h format (uint32
/// length prefix per record). Returns the bytes written.
template <typename T>
uint64_t WritePartitionFile(const std::vector<T>& records,
                            const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  SPANGLE_CHECK(static_cast<bool>(out)) << "cannot create spill file " << path;
  std::string buf;
  uint64_t total = 0;
  for (const T& rec : records) {
    buf.clear();
    Encode(rec, &buf);
    const uint32_t len = static_cast<uint32_t>(buf.size());
    out.write(reinterpret_cast<const char*>(&len), sizeof(len));
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    total += sizeof(len) + buf.size();
  }
  SPANGLE_CHECK(static_cast<bool>(out)) << "spill write failed: " << path;
  return total;
}

/// Reads a partition back from a spill file written by WritePartitionFile.
template <typename T>
std::vector<T> ReadPartitionFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SPANGLE_CHECK(static_cast<bool>(in)) << "cannot open spill file " << path;
  std::vector<T> out;
  uint32_t len = 0;
  std::string buf;
  while (in.read(reinterpret_cast<char*>(&len), sizeof(len))) {
    buf.resize(len);
    in.read(buf.data(), len);
    SPANGLE_CHECK(static_cast<bool>(in)) << "truncated spill file " << path;
    size_t consumed = 0;
    out.push_back(Decode<T>(buf.data(), buf.size(), &consumed));
  }
  return out;
}

/// Encodes one partition into a contiguous byte string (uint32 record
/// count, then the records back to back). The wire form shuffle blocks
/// travel in between driver and executor daemons; unlike the spill-file
/// format it needs no per-record length prefix because DecodePartition
/// walks records with the same codec that wrote them.
template <typename T>
std::string EncodePartition(const std::vector<T>& records) {
  std::string out;
  const uint32_t n = static_cast<uint32_t>(records.size());
  out.append(reinterpret_cast<const char*>(&n), sizeof(n));
  for (const T& rec : records) Encode(rec, &out);
  return out;
}

/// Inverse of EncodePartition. CHECK-fails on malformed input: the bytes
/// come from a daemon this driver itself encoded them for, so corruption
/// is an engine bug (frame/message parsing guards the untrusted layers).
template <typename T>
std::vector<T> DecodePartition(const char* data, size_t size) {
  uint32_t n = 0;
  SPANGLE_CHECK_GE(size, sizeof(n)) << "truncated partition encoding";
  std::memcpy(&n, data, sizeof(n));
  size_t consumed = sizeof(n);
  std::vector<T> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    out.push_back(Decode<T>(data + consumed, size - consumed, &consumed));
  }
  SPANGLE_CHECK_EQ(consumed, size) << "trailing bytes in partition encoding";
  return out;
}

}  // namespace spill
}  // namespace spangle

#endif  // SPANGLE_ENGINE_SPILL_CODEC_H_
