#ifndef SPANGLE_ENGINE_SPILL_CODEC_H_
#define SPANGLE_ENGINE_SPILL_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "codec/columnar.h"
#include "codec/frame_file.h"
#include "codec/record_codec.h"

namespace spangle {
namespace spill {

/// Compatibility shim: the spill codec now lives in src/codec/. The
/// spillability trait and the record-at-a-time machinery moved verbatim
/// to codec/record_codec.h; the partition-level entry points below keep
/// their signatures but now read and write versioned columnar chunk
/// frames (codec/chunk_frame.h) instead of bare record streams —
/// spill files and shuffle wire blocks share one self-describing,
/// content-addressed format.

using codec::HasByteCodec;
using codec::kSpillable;
using codec::SpillableTrait;

using codec::Decode;
using codec::Encode;

/// Writes one partition to `path` as a chunk frame; returns bytes
/// written.
template <typename T>
uint64_t WritePartitionFile(const std::vector<T>& records,
                            const std::string& path) {
  return codec::WritePartitionFile(records, path);
}

/// Reads a partition back from a frame spill file, via mmap when
/// available.
template <typename T>
std::vector<T> ReadPartitionFile(const std::string& path) {
  return codec::ReadPartitionFile<T>(path);
}

/// Encodes one partition into a chunk frame's bytes. Callers that also
/// need the content hash or raw-size accounting should use
/// codec::EncodePartitionFrame directly.
template <typename T>
std::string EncodePartition(const std::vector<T>& records) {
  return codec::EncodePartitionFrame(records).bytes;
}

/// Inverse of EncodePartition. CHECK-fails on malformed input; paths
/// that receive frames from the network use codec::DecodePartitionFrame
/// and turn decode errors into retryable fetch failures instead.
template <typename T>
std::vector<T> DecodePartition(const char* data, size_t size) {
  auto records = codec::DecodePartitionFrame<T>(data, size);
  SPANGLE_CHECK(records.ok())
      << "corrupt partition frame: " << records.status().ToString();
  return *std::move(records);
}

}  // namespace spill
}  // namespace spangle

#endif  // SPANGLE_ENGINE_SPILL_CODEC_H_
