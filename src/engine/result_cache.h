#ifndef SPANGLE_ENGINE_RESULT_CACHE_H_
#define SPANGLE_ENGINE_RESULT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "engine/metrics.h"

namespace spangle {

/// Shared result cache keyed by lineage digest (internal::LineageDigest):
/// when two sessions submit digest-equal plans, the second is served the
/// first's materialized payload instead of recomputing. Entries are held
/// as type-erased shared_ptrs — the digest covers the full plan including
/// the record type's producing operators, so digest-equal implies
/// type-equal and the caller's static_pointer_cast back is sound.
///
/// Eviction is LRU under a byte budget. An entry larger than the whole
/// budget is never admitted (it would evict everything for one tenant's
/// oversized result). Digest 0 is the "not cacheable" sentinel and is
/// rejected outright.
///
/// Thread-safe. ResultCache::mu_ sits at rank kResultCache — near the
/// bottom of the hierarchy — so Get/Put are callable while holding any
/// serving or engine lock; only metrics atomics are touched while held.
class ResultCache {
 public:
  struct Entry {
    std::shared_ptr<const void> data;
    uint64_t bytes = 0;
  };

  /// `metrics` may be null (standalone tests); the cache then keeps only
  /// its internal accounting.
  ResultCache(uint64_t budget_bytes, EngineMetrics* metrics)
      : budget_(budget_bytes), metrics_(metrics) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;
  ~ResultCache() { Clear(); }

  /// Lookup; refreshes recency on hit. Counts result_cache_hits /
  /// result_cache_misses.
  std::optional<Entry> Get(uint64_t digest) EXCLUDES(mu_);

  /// First-wins insert: a concurrent racer that lost the recompute race
  /// leaves the incumbent entry (and its recency) untouched. Evicts LRU
  /// entries until the new entry fits the budget.
  void Put(uint64_t digest, Entry entry) EXCLUDES(mu_);

  /// Drops every entry (each counts as an eviction).
  void Clear() EXCLUDES(mu_);

  uint64_t budget_bytes() const { return budget_; }
  uint64_t bytes() const EXCLUDES(mu_);
  size_t entries() const EXCLUDES(mu_);

 private:
  struct Node {
    uint64_t digest = 0;
    Entry entry;
  };

  void EvictLruLocked() REQUIRES(mu_);
  void UpdateGaugeLocked() REQUIRES(mu_);

  const uint64_t budget_;
  EngineMetrics* const metrics_;

  mutable Mutex mu_{LockRank::kResultCache, "ResultCache::mu_"};
  std::list<Node> lru_ GUARDED_BY(mu_);  // front = most recently used
  std::unordered_map<uint64_t, std::list<Node>::iterator> index_
      GUARDED_BY(mu_);
  uint64_t bytes_ GUARDED_BY(mu_) = 0;
};

}  // namespace spangle

#endif  // SPANGLE_ENGINE_RESULT_CACHE_H_
