#include "engine/trace.h"

#include <cinttypes>

namespace spangle {

namespace trace {

namespace {
thread_local TraceContext tl_trace_ctx;
}  // namespace

TraceContext Current() { return tl_trace_ctx; }

void SetThreadContext(const TraceContext& ctx) { tl_trace_ctx = ctx; }

ScopedContext::ScopedContext(const TraceContext& ctx) : prev_(tl_trace_ctx) {
  tl_trace_ctx = ctx;
}

ScopedContext::~ScopedContext() { tl_trace_ctx = prev_; }

}  // namespace trace

void SpanRecorder::Record(TraceSpan span) {
  if (!enabled()) return;
  MutexLock lock(&mu_);
  if (ring_.size() >= capacity_) {
    ring_.pop_front();
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  ring_.push_back(std::move(span));
}

std::vector<TraceSpan> SpanRecorder::Drain() {
  MutexLock lock(&mu_);
  std::vector<TraceSpan> out(ring_.begin(), ring_.end());
  ring_.clear();
  return out;
}

std::vector<TraceSpan> SpanRecorder::Snapshot() const {
  MutexLock lock(&mu_);
  return std::vector<TraceSpan>(ring_.begin(), ring_.end());
}

namespace trace {

namespace {

// Span names are engine-internal identifiers, but escape the two JSON
// killers anyway so a bad name can never corrupt the trace file.
std::string JsonSafe(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back('?');
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

void WriteSpanEvents(std::FILE* f, const std::vector<TraceSpan>& spans) {
  // One process_name metadata record per daemon pid present.
  bool daemon_seen[256] = {false};
  for (const TraceSpan& s : spans) {
    if (s.executor >= 0 && s.executor < 256 && !daemon_seen[s.executor]) {
      daemon_seen[s.executor] = true;
      std::fprintf(f,
                   ",\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                   "\"args\":{\"name\":\"executord %d\"}}",
                   kDaemonPidBase + s.executor, s.executor);
    }
  }
  bool driver_seen = false;
  for (const TraceSpan& s : spans) {
    if (s.executor < 0 && !driver_seen) {
      driver_seen = true;
      std::fprintf(f,
                   ",\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                   "\"args\":{\"name\":\"driver rpc\"}}",
                   kDriverRpcPid);
    }
  }
  for (const TraceSpan& s : spans) {
    const int pid =
        s.executor < 0 ? kDriverRpcPid : kDaemonPidBase + s.executor;
    // Spread concurrent spans across a few lanes so overlapping RPCs
    // don't all stack on one row; the lane is cosmetic.
    const unsigned tid = static_cast<unsigned>(s.span_id & 0x7);
    std::fprintf(
        f,
        ",\n{\"name\":\"%s\",\"cat\":\"rpc\",\"ph\":\"X\",\"ts\":%" PRIu64
        ",\"dur\":%" PRIu64 ",\"pid\":%d,\"tid\":%u,\"args\":{"
        "\"trace_id\":%" PRIu64 ",\"span_id\":%" PRIu64
        ",\"parent_span_id\":%" PRIu64 "}}",
        JsonSafe(s.name).c_str(), s.start_us, s.duration_us, pid, tid,
        s.trace_id, s.span_id, s.parent_span_id);
    if (s.executor < 0) {
      // Flow start anchored at the end of the driver client span.
      std::fprintf(f,
                   ",\n{\"name\":\"rpc\",\"cat\":\"rpc\",\"ph\":\"s\","
                   "\"id\":%" PRIu64 ",\"ts\":%" PRIu64
                   ",\"pid\":%d,\"tid\":%u}",
                   s.span_id, s.start_us, pid, tid);
    } else if (s.parent_span_id != 0) {
      // Flow finish at the daemon serve span, keyed on the driver span
      // id it parents under.
      std::fprintf(f,
                   ",\n{\"name\":\"rpc\",\"cat\":\"rpc\",\"ph\":\"f\","
                   "\"bp\":\"e\",\"id\":%" PRIu64 ",\"ts\":%" PRIu64
                   ",\"pid\":%d,\"tid\":%u}",
                   s.parent_span_id, s.start_us, pid, tid);
    }
  }
}

}  // namespace trace

}  // namespace spangle
