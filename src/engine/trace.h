#ifndef SPANGLE_ENGINE_TRACE_H_
#define SPANGLE_ENGINE_TRACE_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"

namespace spangle {

// Distributed tracing primitives (DESIGN.md §14).
//
// The driver stamps a (trace_id, span_id, parent_span_id) triple on every
// job / stage / task it runs; data-plane RPCs carry the triple to the
// executor daemons, whose serve-side work records spans into a bounded
// per-daemon SpanRecorder ring. The stats pull plane drains those rings
// back to the driver, which merges them — clock-offset adjusted — with
// its own spans into one Chrome trace.

/// The ambient trace identity of the current thread. trace_id == 0 means
/// "not traced": RPCs stamp all-zero headers and daemons record nothing.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;          // the innermost enclosing span
  uint64_t parent_span_id = 0;   // its parent (0 = root)
};

namespace trace {

/// Thread-local trace context. Threads start untraced; RunJob binds the
/// job root, RunStage rebinds per task, and scheduler driver threads
/// inherit from the submitting thread (like internal::SetThreadJobId).
TraceContext Current();
void SetThreadContext(const TraceContext& ctx);

/// RAII binding that restores the previous context on destruction.
class ScopedContext {
 public:
  explicit ScopedContext(const TraceContext& ctx);
  ~ScopedContext();
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  TraceContext prev_;
};

}  // namespace trace

/// One finished span. `executor` is -1 for driver-side spans; daemon
/// spans get their executor id stamped when the driver collects them.
/// `start_us` is on the recording process's epoch until the collector
/// shifts daemon spans onto the driver timeline.
struct TraceSpan {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  std::string name;
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
  int32_t executor = -1;
};

/// Bounded ring of finished spans. Overflow drops the oldest span and
/// bumps `dropped()` — tracing must never grow without bound or block
/// the data plane (mirrors the StageStat ring in EngineMetrics).
///
/// `id_base` partitions the span-id space between processes: the driver
/// mints ids from base 0, daemon N from (N+1) << 48, so ids stay unique
/// within a trace without cross-process coordination.
class SpanRecorder {
 public:
  explicit SpanRecorder(size_t capacity = kDefaultCapacity,
                        uint64_t id_base = 0)
      : capacity_(capacity), next_span_id_(id_base + 1) {}

  static constexpr size_t kDefaultCapacity = 8192;

  /// No-op when disabled (the tracing on/off switch for overhead
  /// ablation) — span ids already minted are simply discarded.
  void Record(TraceSpan span) EXCLUDES(mu_);

  /// Removes and returns every recorded span (oldest first).
  std::vector<TraceSpan> Drain() EXCLUDES(mu_);

  /// Non-destructive copy (oldest first).
  std::vector<TraceSpan> Snapshot() const EXCLUDES(mu_);

  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  uint64_t NextSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

 private:
  const size_t capacity_;
  std::atomic<uint64_t> next_span_id_;
  std::atomic<uint64_t> dropped_{0};
  std::atomic<bool> enabled_{true};
  // Innermost lock: Record() is called from task bodies holding a
  // TaskGate and from daemon RPC handler threads; nothing is acquired
  // under it.
  mutable Mutex mu_{LockRank::kLeaf};
  std::deque<TraceSpan> ring_ GUARDED_BY(mu_);
};

/// Driver-side view of one executor daemon, fed by the heartbeat gauges
/// and the stats pull plane. Returned by ExecutorFleet::ExecutorStats()
/// and rendered by the fleet-labeled metric exports.
struct FleetExecutorStats {
  int executor = -1;
  bool scraped = false;           // at least one stats pull succeeded
  uint64_t blocks_held = 0;       // heartbeat / stats gauges
  uint64_t bytes_in_memory = 0;
  uint64_t tasks_run = 0;
  uint64_t spans_dropped = 0;     // daemon span-ring overflow
  int64_t clock_offset_us = 0;    // daemon epoch - driver epoch
  uint64_t restarts = 0;          // times this slot's daemon was respawned
  // Scraped scalar snapshot of the daemon's EngineMetrics registry:
  // (name, kind, value) with kind mirroring net::StatsMetric (0 counter,
  // 1 gauge, 2 timer).
  std::vector<std::string> metric_names;
  std::vector<uint8_t> metric_kinds;
  std::vector<uint64_t> metric_values;
};

namespace trace {

/// Merged-trace writer: appends Chrome trace_event objects for `spans`
/// to an already-open JSON event array (each object prefixed with
/// ",\n"). Driver spans (executor < 0) land on pid 3 ("driver rpc");
/// daemon spans on pid 10+N with a process_name metadata record per
/// daemon. Every driver span emits a flow-start ("s") keyed on its
/// span_id and every daemon span with a parent emits the matching
/// flow-finish ("f"), which is what visually ties a driver fetch span to
/// the daemon serve span it triggered. Timestamps must already be on the
/// driver epoch.
void WriteSpanEvents(std::FILE* f, const std::vector<TraceSpan>& spans);

constexpr int kDriverRpcPid = 3;
constexpr int kDaemonPidBase = 10;

}  // namespace trace

}  // namespace spangle

#endif  // SPANGLE_ENGINE_TRACE_H_
