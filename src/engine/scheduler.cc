#include "engine/scheduler.h"

#include <algorithm>
#include <functional>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "common/mutex.h"
#include "engine/engine.h"

namespace spangle {

namespace {

/// Holds the concurrent_shuffles gauge up while a stage materializes
/// (exception-safe decrement for the serial path).
struct GaugeGuard {
  explicit GaugeGuard(std::atomic<uint64_t>& gauge) : gauge_(gauge) {
    gauge_.fetch_add(1, std::memory_order_relaxed);
  }
  ~GaugeGuard() { gauge_.fetch_sub(1, std::memory_order_relaxed); }
  std::atomic<uint64_t>& gauge_;
};

}  // namespace

namespace internal {

namespace {
thread_local uint64_t tl_job_id = 0;
}  // namespace

uint64_t CurrentJobId() { return tl_job_id; }
void SetThreadJobId(uint64_t id) { tl_job_id = id; }

ScopedJobId::ScopedJobId(uint64_t id) : prev_(tl_job_id) { tl_job_id = id; }
ScopedJobId::~ScopedJobId() { tl_job_id = prev_; }

}  // namespace internal

int PhysicalPlan::NumPendingShuffleStages() const {
  int n = 0;
  for (const auto& s : stages) {
    if (s.is_shuffle && !s.materialized) ++n;
  }
  return n;
}

int PhysicalPlan::NumMaterializedShuffleStages() const {
  int n = 0;
  for (const auto& s : stages) {
    if (s.is_shuffle && s.materialized) ++n;
  }
  return n;
}

int PhysicalPlan::MaxOverlapWidth() const {
  // Depth = longest chain of pending shuffle stages below this one.
  // Stages are in topological order, so one forward pass suffices; the
  // answer is the widest depth level among pending shuffle stages.
  std::vector<int> depth(stages.size(), 0);
  std::unordered_map<int, int> width_at_depth;
  int best = 0;
  for (const auto& s : stages) {
    int d = 0;
    for (int dep : s.deps) {
      const auto& ds = stages[dep];
      const int below =
          depth[dep] + ((ds.is_shuffle && !ds.materialized) ? 1 : 0);
      d = std::max(d, below);
    }
    depth[s.id] = d;
    if (s.is_shuffle && !s.materialized) {
      best = std::max(best, ++width_at_depth[d]);
    }
  }
  return best;
}

std::string PhysicalPlan::ToString() const {
  std::ostringstream os;
  os << "== Physical plan";
  if (!action.empty()) os << ": " << action;
  os << " ==\n";
  for (const auto& s : stages) {
    os << "Stage " << s.id << " [";
    if (s.is_shuffle) {
      os << (s.materialized ? "shuffle, materialized" : "shuffle");
    } else {
      os << "result";
    }
    os << "] " << s.name << " tasks=" << s.num_tasks << " deps=";
    if (s.deps.empty()) {
      os << "-";
    } else {
      for (size_t i = 0; i < s.deps.size(); ++i) {
        if (i > 0) os << ",";
        os << s.deps[i];
      }
    }
    os << "\n";
  }
  os << "pending shuffle stages: " << NumPendingShuffleStages() << " ("
     << NumMaterializedShuffleStages()
     << " already materialized), max overlap width: " << MaxOverlapWidth()
     << "\n";
  return os.str();
}

PhysicalPlan Scheduler::BuildPlan(
    const std::vector<internal::NodeBase*>& roots,
    const std::string& action) const {
  PhysicalPlan plan;
  plan.action = action;
  // Memoized DFS: a node's "exposed" stages are the nearest shuffle
  // stages at or above it. Dedup by node id makes diamond lineages (the
  // same shuffle reachable through two paths) plan the shuffle once.
  std::unordered_map<uint64_t, std::vector<int>> memo;
  auto merge = [](std::vector<int>* into, const std::vector<int>& from) {
    for (int id : from) {
      if (std::find(into->begin(), into->end(), id) == into->end()) {
        into->push_back(id);
      }
    }
  };
  std::function<std::vector<int>(internal::NodeBase*)> visit =
      [&](internal::NodeBase* n) -> std::vector<int> {
    if (n == nullptr) return {};
    auto it = memo.find(n->id());
    if (it != memo.end()) return it->second;
    std::vector<int> exposed;
    if (n->IsShuffle()) {
      PlanStage st;
      st.materialized = n->IsMaterialized();
      if (!st.materialized) {
        // A materialized shuffle cuts the walk: its output is available,
        // so nothing above it needs to be planned (Spark's stage skip).
        for (internal::NodeBase* p : n->Parents()) merge(&st.deps, visit(p));
      }
      st.id = static_cast<int>(plan.stages.size());
      st.node_id = n->id();
      st.name = n->name() + "#" + std::to_string(n->id());
      st.is_shuffle = true;
      st.num_tasks = n->num_partitions();
      st.node = n;
      plan.stages.push_back(std::move(st));
      exposed = {plan.stages.back().id};
    } else {
      for (internal::NodeBase* p : n->Parents()) merge(&exposed, visit(p));
    }
    memo.emplace(n->id(), exposed);
    return exposed;
  };
  std::vector<int> root_deps;
  int result_tasks = 0;
  for (internal::NodeBase* r : roots) {
    merge(&root_deps, visit(r));
    if (r != nullptr) result_tasks += r->num_partitions();
  }
  if (!action.empty()) {
    PlanStage st;
    st.id = static_cast<int>(plan.stages.size());
    st.node_id = roots.size() == 1 && roots[0] != nullptr ? roots[0]->id() : 0;
    st.name = action;
    st.num_tasks = result_tasks;
    st.deps = std::move(root_deps);
    plan.stages.push_back(std::move(st));
  }
  return plan;
}

void Scheduler::MaterializeShuffles(const PhysicalPlan& plan,
                                    bool serial) const {
  std::vector<int> pending;
  for (const auto& s : plan.stages) {
    if (s.is_shuffle && !s.materialized) pending.push_back(s.id);
  }
  if (pending.empty()) return;
  EngineMetrics& metrics = ctx_->metrics();
  if (serial || pending.size() == 1) {
    // Topological order is the plan order.
    metrics.RaisePeakConcurrentShuffles(1);
    GaugeGuard gauge(metrics.concurrent_shuffles);
    for (int id : pending) plan.stages[id].node->Materialize();
    return;
  }
  // One driver thread per pending stage: each waits for its dependencies,
  // then materializes. Stages with no ordering between them overlap; the
  // executor pool multiplexes their task batches over the shared workers.
  //
  // Failure: the first stage whose materialization throws records its
  // exception and flips `failed`, which releases every thread still
  // waiting on dependencies (they return without materializing). After
  // the join the error is rethrown on the submitting thread, where
  // RunJob's recovery loop can re-plan.
  const uint64_t job = internal::CurrentJobId();
  // Per-stage driver threads inherit the submitter's identity: the job id
  // (tenant attribution in StageStats) and the trace context (so the
  // stages they run stamp the same trace_id onto fleet RPCs).
  const TraceContext submitter_trace = trace::Current();
  // Rank kScheduler: held only around the done/running/failed
  // bookkeeping; Materialize() itself runs with the lock released.
  Mutex mu{LockRank::kScheduler, "Scheduler::materialize_mu"};
  CondVar cv;
  std::vector<char> done(plan.stages.size(), 0);
  for (const auto& s : plan.stages) {
    if (s.is_shuffle && s.materialized) done[s.id] = 1;
  }
  int running = 0;
  bool failed = false;
  std::exception_ptr first_error;
  std::vector<std::thread> threads;
  threads.reserve(pending.size());
  for (int id : pending) {
    threads.emplace_back([&, id] {
      internal::SetThreadJobId(job);
      trace::SetThreadContext(submitter_trace);
      const PlanStage& stage = plan.stages[id];
      {
        MutexLock lock(&mu);
        cv.Wait(mu, [&] {
          if (failed) return true;
          for (int dep : stage.deps) {
            if (!done[dep]) return false;
          }
          return true;
        });
        if (failed) return;
        ++running;
        metrics.concurrent_shuffles.fetch_add(1, std::memory_order_relaxed);
        metrics.RaisePeakConcurrentShuffles(static_cast<uint64_t>(running));
      }
      try {
        stage.node->Materialize();
        MutexLock lock(&mu);
        --running;
        metrics.concurrent_shuffles.fetch_sub(1, std::memory_order_relaxed);
        done[id] = 1;
      } catch (...) {
        MutexLock lock(&mu);
        --running;
        metrics.concurrent_shuffles.fetch_sub(1, std::memory_order_relaxed);
        if (!failed) {
          failed = true;
          first_error = std::current_exception();
        }
      }
      cv.NotifyAll();
    });
  }
  for (auto& t : threads) t.join();
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

}  // namespace spangle
