#ifndef SPANGLE_ENGINE_PARTITIONER_H_
#define SPANGLE_ENGINE_PARTITIONER_H_

#include <cstdint>
#include <functional>
#include <memory>

namespace spangle {

/// Maps a key to a partition index. Two PairRdds whose partitioners are
/// Equal() and that have been PartitionBy()'d are *co-partitioned*:
/// key-equal records live in equal-numbered partitions, so joins between
/// them need no shuffle (the paper's local-join optimization, Sec. VI-A).
template <typename K>
class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual int num_partitions() const = 0;
  virtual int PartitionFor(const K& key) const = 0;
  /// Structural equality (same scheme + same partition count).
  virtual bool Equals(const Partitioner<K>& other) const = 0;
};

/// hash(key) mod P, Spark's default.
template <typename K>
class HashPartitioner : public Partitioner<K> {
 public:
  explicit HashPartitioner(int num_partitions)
      : num_partitions_(num_partitions) {}

  int num_partitions() const override { return num_partitions_; }

  int PartitionFor(const K& key) const override {
    // Finalize std::hash output so consecutive integer keys spread out.
    uint64_t h = static_cast<uint64_t>(std::hash<K>{}(key));
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDULL;
    h ^= h >> 33;
    return static_cast<int>(h % static_cast<uint64_t>(num_partitions_));
  }

  bool Equals(const Partitioner<K>& other) const override {
    auto* o = dynamic_cast<const HashPartitioner<K>*>(&other);
    return o != nullptr && o->num_partitions_ == num_partitions_;
  }

 private:
  int num_partitions_;
};

/// Contiguous key ranges over [0, max_key]; keys must be integral.
/// Preserves ordering across partitions, used for chunk-locality layouts.
template <typename K>
class RangePartitioner : public Partitioner<K> {
 public:
  RangePartitioner(int num_partitions, K max_key)
      : num_partitions_(num_partitions),
        span_((static_cast<uint64_t>(max_key) + num_partitions) /
              num_partitions) {}

  int num_partitions() const override { return num_partitions_; }

  int PartitionFor(const K& key) const override {
    const int p = static_cast<int>(static_cast<uint64_t>(key) / span_);
    return p < num_partitions_ ? p : num_partitions_ - 1;
  }

  bool Equals(const Partitioner<K>& other) const override {
    auto* o = dynamic_cast<const RangePartitioner<K>*>(&other);
    return o != nullptr && o->num_partitions_ == num_partitions_ &&
           o->span_ == span_;
  }

 private:
  int num_partitions_;
  uint64_t span_;
};

/// partition = key mod P. Used by the SGD ChunkId scheme (Eq. 2): ids are
/// generated as C = nP * rID + pID, so `C mod nP` recovers the partition
/// that generated the chunk — lookups never shuffle.
template <typename K>
class ModuloPartitioner : public Partitioner<K> {
 public:
  explicit ModuloPartitioner(int num_partitions)
      : num_partitions_(num_partitions) {}

  int num_partitions() const override { return num_partitions_; }

  int PartitionFor(const K& key) const override {
    return static_cast<int>(static_cast<uint64_t>(key) %
                            static_cast<uint64_t>(num_partitions_));
  }

  bool Equals(const Partitioner<K>& other) const override {
    auto* o = dynamic_cast<const ModuloPartitioner<K>*>(&other);
    return o != nullptr && o->num_partitions_ == num_partitions_;
  }

 private:
  int num_partitions_;
};

}  // namespace spangle

#endif  // SPANGLE_ENGINE_PARTITIONER_H_
