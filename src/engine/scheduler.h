#ifndef SPANGLE_ENGINE_SCHEDULER_H_
#define SPANGLE_ENGINE_SCHEDULER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace spangle {

class Context;

namespace internal {

class NodeBase;

/// Job id of the scheduler job the current thread is working for (0 when
/// outside any job). Stamped onto every StageStat so trace export can
/// group stages by job; scheduler threads inherit it from the submitting
/// thread.
uint64_t CurrentJobId();
void SetThreadJobId(uint64_t id);

/// RAII job-id binding for the current thread.
class ScopedJobId {
 public:
  explicit ScopedJobId(uint64_t id);
  ~ScopedJobId();
  ScopedJobId(const ScopedJobId&) = delete;
  ScopedJobId& operator=(const ScopedJobId&) = delete;

 private:
  uint64_t prev_;
};

}  // namespace internal

/// One stage of a physical plan. Shuffle stages materialize one shuffle
/// node (map side + reduce side); the optional result stage at the end
/// runs the action's own tasks. A shuffle stage whose output is already
/// available (cached from an earlier job) appears with materialized=true
/// and is skipped at run time — Spark's completed-stage skipping.
struct PlanStage {
  int id = 0;
  uint64_t node_id = 0;
  std::string name;          // "<node name>#<node id>" or the action name
  bool is_shuffle = false;
  bool materialized = false;  // shuffle output already available: skipped
  int num_tasks = 0;          // output partitions (reduce side / action)
  std::vector<int> deps;      // stage ids that must finish first
  internal::NodeBase* node = nullptr;  // owning job keeps this alive
};

/// A staged physical plan for one job: stages in topological order, cut
/// at shuffle boundaries and deduplicated by lineage node id, with the
/// result stage (when an action name was given) last.
struct PhysicalPlan {
  std::string action;
  std::vector<PlanStage> stages;

  /// Shuffle stages that will actually run (not already materialized).
  int NumPendingShuffleStages() const;
  /// Shuffle stages skipped because their output is still available.
  int NumMaterializedShuffleStages() const;
  /// Largest set of pending shuffle stages with no ordering between them
  /// at one dependency depth — the stage concurrency the scheduler can
  /// exploit (>= 2 means independent shuffles overlap).
  int MaxOverlapWidth() const;

  /// Human-readable plan dump (the Explain() output).
  std::string ToString() const;
};

/// The DAG scheduler: reifies the lineage DAG into a staged physical plan
/// and executes it. Replaces the old recursive one-shuffle-at-a-time
/// post-order walk — independent shuffle stages (e.g. the scatter stages
/// of the two sides of a matrix multiply) now materialize concurrently on
/// their own driver threads, each submitting its map/reduce stages to the
/// shared executor pool.
class Scheduler {
 public:
  explicit Scheduler(Context* ctx) : ctx_(ctx) {}

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Builds the staged physical plan for running `action` over `roots`
  /// (multi-root plans model jobs like multi-attribute reconciliation).
  /// Pass an empty action for a materialize-only plan with no result
  /// stage. Does not execute anything.
  PhysicalPlan BuildPlan(const std::vector<internal::NodeBase*>& roots,
                         const std::string& action) const;

  /// Runs every pending shuffle stage of `plan` in dependency order;
  /// stages not ordered relative to each other run concurrently unless
  /// `serial` is set (the ablation baseline).
  void MaterializeShuffles(const PhysicalPlan& plan, bool serial) const;

 private:
  Context* ctx_;
};

}  // namespace spangle

#endif  // SPANGLE_ENGINE_SCHEDULER_H_
