#ifndef SPANGLE_ENGINE_DISK_PERSIST_H_
#define SPANGLE_ENGINE_DISK_PERSIST_H_

#include <cstdio>
#include <fstream>
#include <string>

#include "common/result.h"
#include "engine/engine.h"

namespace spangle {

namespace internal {

/// Source node that streams one partition per file written by
/// PersistToDisk. Records are length-prefixed blobs handed to `decode`.
template <typename T>
class DiskSourceNode final : public Node<T> {
 public:
  using Decode = std::function<T(const char*, size_t)>;

  DiskSourceNode(Context* ctx, std::vector<std::string> files, Decode decode)
      : Node<T>(ctx, "diskSource"),
        files_(std::move(files)),
        decode_(std::move(decode)) {}

  int num_partitions() const override {
    return static_cast<int>(files_.size());
  }
  std::vector<NodeBase*> Parents() const override { return {}; }

 protected:
  std::vector<T> ComputePartition(int i) override {
    std::vector<T> out;
    std::ifstream in(files_[i], std::ios::binary);
    SPANGLE_CHECK(static_cast<bool>(in))
        << "cannot open spilled partition " << files_[i];
    uint32_t len = 0;
    std::string buf;
    while (in.read(reinterpret_cast<char*>(&len), sizeof(len))) {
      buf.resize(len);
      in.read(buf.data(), len);
      SPANGLE_CHECK(static_cast<bool>(in))
          << "truncated spilled partition " << files_[i];
      out.push_back(decode_(buf.data(), buf.size()));
    }
    return out;
  }

 private:
  std::vector<std::string> files_;
  Decode decode_;
};

}  // namespace internal

/// Spark's persist-to-disk storage level: evaluates `rdd` once, spills
/// every partition to a file under `dir` (one file per partition,
/// length-prefixed records), and returns an RDD that streams the spilled
/// data back on demand. Unlike Cache(), the data survives without
/// holding memory; unlike recomputation, reading back skips the lineage
/// entirely. Files are named `<prefix>_p<idx>.part` and are the caller's
/// to clean up.
template <typename T>
Rdd<T> PersistToDisk(const Rdd<T>& rdd, const std::string& dir,
                     const std::string& prefix,
                     std::function<void(const T&, std::string*)> encode,
                     std::function<T(const char*, size_t)> decode) {
  const int n = rdd.num_partitions();
  std::vector<std::string> files(n);
  for (int i = 0; i < n; ++i) {
    files[i] = dir + "/" + prefix + "_p" + std::to_string(i) + ".part";
  }
  rdd.ForEachPartition([&](int i, const std::vector<T>& records) {
    std::ofstream out(files[i], std::ios::binary);
    SPANGLE_CHECK(static_cast<bool>(out)) << "cannot create " << files[i];
    std::string buf;
    for (const T& rec : records) {
      buf.clear();
      encode(rec, &buf);
      const uint32_t len = static_cast<uint32_t>(buf.size());
      out.write(reinterpret_cast<const char*>(&len), sizeof(len));
      out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    }
    SPANGLE_CHECK(static_cast<bool>(out)) << "write failed: " << files[i];
  });
  return Rdd<T>(std::make_shared<internal::DiskSourceNode<T>>(
      rdd.ctx(), std::move(files), std::move(decode)));
}

}  // namespace spangle

#endif  // SPANGLE_ENGINE_DISK_PERSIST_H_
