#include "engine/job_server.h"

#include <exception>
#include <unordered_set>

#include "common/logging.h"
#include "engine/scheduler.h"

namespace spangle {

JobServer::JobServer(Context* ctx, Options opts)
    : ctx_(ctx), opts_(std::move(opts)) {
  SPANGLE_CHECK(ctx_ != nullptr);
  if (opts_.result_cache_bytes > 0) {
    cache_ = std::make_unique<ResultCache>(opts_.result_cache_bytes,
                                           &ctx_->metrics());
  }
  {
    MutexLock lock(&mu_);
    paused_ = opts_.start_paused;
  }
  const int n = opts_.dispatcher_threads < 1 ? 1 : opts_.dispatcher_threads;
  dispatchers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    dispatchers_.emplace_back([this] { DispatcherLoop(); });
  }
}

JobServer::~JobServer() { Shutdown(); }

JobServer::SessionId JobServer::OpenSession(SessionOptions opts) {
  MutexLock lock(&mu_);
  const SessionId id = sessions_.size() + 1;
  sessions_.push_back(std::make_unique<Session>(id, std::move(opts)));
  return id;
}

Result<JobServer::JobId> JobServer::Submit(SessionId session, JobFn fn,
                                           SubmitOptions opts) {
  uint64_t estimate = opts.estimate_bytes != 0 ? opts.estimate_bytes
                                               : opts_.default_estimate_bytes;
  const uint64_t budget = ctx_->block_manager().memory_budget();
  if (budget != 0 && estimate > budget) {
    // Typed rejection: this job can never be admitted — even alone it
    // would blow the memory budget. The caller sees the policy decision,
    // not an OOM kill.
    ctx_->metrics().admission_rejected.fetch_add(1);
    return Status::OutOfMemory(
        "job estimate " + std::to_string(estimate) +
        " bytes exceeds the memory budget of " + std::to_string(budget) +
        " bytes; it would be rejected by admission control forever");
  }
  MutexLock lock(&mu_);
  if (shutdown_) {
    return Status::FailedPrecondition("JobServer is shut down");
  }
  if (session == 0 || session > sessions_.size()) {
    return Status::InvalidArgument("unknown session id " +
                                   std::to_string(session));
  }
  const JobId id = ++next_job_id_;
  auto job = std::make_unique<Job>();
  job->id = id;
  job->session = session;
  job->label = std::move(opts.label);
  job->fn = std::move(fn);
  job->estimate = estimate;
  job->digest = opts.digest;
  job->submit_us = ctx_->NowMicros();
  jobs_.emplace(id, std::move(job));
  ++outstanding_;
  Session* s = SessionLocked(session);
  {
    MutexLock qlock(&s->queue_mu);
    s->queue.push_back(id);
    ++s->submitted;
  }
  ctx_->metrics().jobs_submitted.fetch_add(1);
  work_cv_.NotifyAll();
  return id;
}

Status JobServer::Wait(JobId job) {
  MutexLock lock(&mu_);
  const auto it = jobs_.find(job);
  if (it == jobs_.end()) {
    return Status::InvalidArgument("unknown job id " + std::to_string(job));
  }
  Job* j = it->second.get();
  while (!j->done) done_cv_.Wait(mu_);
  return j->status;
}

void JobServer::WaitAll() {
  MutexLock lock(&mu_);
  SPANGLE_CHECK(!paused_ || shutdown_);  // a paused server never drains
  while (outstanding_ > 0) done_cv_.Wait(mu_);
}

JobServer::Payload JobServer::ResultPayload(JobId job) {
  MutexLock lock(&mu_);
  const auto it = jobs_.find(job);
  if (it == jobs_.end() || !it->second->done) return {};
  return it->second->payload;
}

void JobServer::Pause() {
  MutexLock lock(&mu_);
  paused_ = true;
}

void JobServer::Resume() {
  MutexLock lock(&mu_);
  paused_ = false;
  work_cv_.NotifyAll();
}

void JobServer::Shutdown() {
  {
    MutexLock lock(&mu_);
    if (shutdown_) return;
    shutdown_ = true;
    work_cv_.NotifyAll();
  }
  for (auto& t : dispatchers_) t.join();
  dispatchers_.clear();
  // Dispatchers are gone: fail every job still sitting in a queue so
  // Wait() callers unblock with a typed status instead of hanging.
  MutexLock lock(&mu_);
  for (const auto& s : sessions_) {
    std::deque<JobId> drained;
    {
      MutexLock qlock(&s->queue_mu);
      drained.swap(s->queue);
      s->failed += drained.size();
    }
    for (const JobId id : drained) {
      Job* j = jobs_.at(id).get();
      j->status = Status::FailedPrecondition(
          "JobServer shut down before the job was dispatched");
      j->done = true;
      --outstanding_;
    }
  }
  done_cv_.NotifyAll();
}

JobServer::SessionStats JobServer::Stats(SessionId session) const {
  SessionStats out;
  MutexLock lock(&mu_);
  if (session == 0 || session > sessions_.size()) return out;
  const Session* s = sessions_[session - 1].get();
  MutexLock qlock(&s->queue_mu);
  out.name = s->name;
  out.weight = s->weight;
  out.submitted = s->submitted;
  out.dispatched = s->dispatched;
  out.completed = s->completed;
  out.failed = s->failed;
  out.cache_hits = s->cache_hits;
  out.deferred = s->deferred;
  out.wait_us = s->wait_us;
  out.run_us = s->run_us;
  out.engine_job_ids = s->engine_job_ids;
  out.wait_p50_us = s->wait_hist.Percentile(0.50);
  out.wait_p95_us = s->wait_hist.Percentile(0.95);
  out.wait_p99_us = s->wait_hist.Percentile(0.99);
  out.run_p50_us = s->run_hist.Percentile(0.50);
  out.run_p95_us = s->run_hist.Percentile(0.95);
  out.run_p99_us = s->run_hist.Percentile(0.99);
  out.e2e_p50_us = s->e2e_hist.Percentile(0.50);
  out.e2e_p95_us = s->e2e_hist.Percentile(0.95);
  out.e2e_p99_us = s->e2e_hist.Percentile(0.99);
  return out;
}

JobServer::JobInfo JobServer::Info(JobId job) const {
  JobInfo out;
  MutexLock lock(&mu_);
  const auto it = jobs_.find(job);
  if (it == jobs_.end()) return out;
  const Job* j = it->second.get();
  out.session = j->session;
  out.label = j->label;
  out.done = j->done;
  out.cache_hit = j->cache_hit;
  out.status = j->status;
  if (j->dispatch_us >= j->submit_us) out.wait_us = j->dispatch_us - j->submit_us;
  if (j->done && j->done_us >= j->dispatch_us) {
    out.run_us = j->done_us - j->dispatch_us;
  }
  return out;
}

std::vector<std::pair<JobServer::SessionId, JobServer::JobId>>
JobServer::DispatchLog() const {
  MutexLock lock(&mu_);
  return dispatch_log_;
}

uint64_t JobServer::committed_bytes() const {
  MutexLock lock(&mu_);
  return committed_;
}

JobServer::Session* JobServer::SessionLocked(SessionId id) const {
  SPANGLE_CHECK(id >= 1 && id <= sessions_.size());
  return sessions_[id - 1].get();
}

void JobServer::AdvanceCursorLocked() {
  rr_index_ = sessions_.empty() ? 0 : (rr_index_ + 1) % sessions_.size();
  rr_credits_ = 0;  // re-seeded from the next session's weight on visit
}

bool JobServer::AdmitLocked(const Job& job) const {
  const uint64_t budget = ctx_->block_manager().memory_budget();
  if (budget == 0) return true;  // unbudgeted context: admit everything
  // Progress guarantee: with nothing running, the head job is admitted
  // no matter its estimate (Submit already rejected estimates over the
  // whole budget). Queue-not-OOM must never become queue-forever.
  if (running_ == 0) return true;
  const uint64_t limit =
      static_cast<uint64_t>(static_cast<double>(budget) * opts_.admit_watermark);
  const uint64_t used = ctx_->block_manager().bytes_in_memory() + committed_;
  return used + job.estimate <= limit;
}

JobServer::Job* JobServer::PickAndAdmitLocked() {
  const size_t n = sessions_.size();
  if (n == 0) return nullptr;
  if (rr_index_ >= n) rr_index_ = 0;
  for (size_t scanned = 0; scanned < n; ++scanned) {
    Session* s = sessions_[rr_index_].get();
    if (rr_credits_ <= 0) rr_credits_ = s->weight;
    JobId head = 0;
    {
      MutexLock qlock(&s->queue_mu);
      if (!s->queue.empty()) head = s->queue.front();
    }
    if (head == 0) {
      AdvanceCursorLocked();
      continue;
    }
    Job* job = jobs_.at(head).get();
    if (!AdmitLocked(*job)) {
      if (!job->deferred_counted) {
        job->deferred_counted = true;
        ctx_->metrics().admission_queued.fetch_add(1);
        MutexLock qlock(&s->queue_mu);
        ++s->deferred;
      }
      // This tenant's head does not fit right now; a lighter neighbor
      // might. FIFO within a session is preserved; order across sessions
      // is whatever admission allows.
      AdvanceCursorLocked();
      continue;
    }
    {
      MutexLock qlock(&s->queue_mu);
      s->queue.pop_front();
      ++s->dispatched;
    }
    --rr_credits_;
    if (rr_credits_ <= 0) AdvanceCursorLocked();
    return job;
  }
  return nullptr;
}

void JobServer::DispatcherLoop() {
  for (;;) {
    Job* job = nullptr;
    {
      MutexLock lock(&mu_);
      for (;;) {
        if (shutdown_) return;
        if (!paused_) {
          job = PickAndAdmitLocked();
          if (job != nullptr) break;
        }
        work_cv_.Wait(mu_);
      }
      job->dispatch_us = ctx_->NowMicros();
      committed_ += job->estimate;
      ++running_;
      dispatch_log_.emplace_back(job->session, job->id);
      Session* s = SessionLocked(job->session);
      const uint64_t wait = job->dispatch_us - job->submit_us;
      ctx_->metrics().job_queue_wait_us.Observe(static_cast<double>(wait));
      s->wait_hist.Observe(static_cast<double>(wait));
      MutexLock qlock(&s->queue_mu);
      s->wait_us += wait;
    }
    ExecuteJob(job);
  }
}

void JobServer::ExecuteJob(Job* job) {
  Payload payload;
  Status status;  // OK
  bool cache_hit = false;
  if (job->digest != 0 && cache_ != nullptr) {
    if (auto hit = cache_->Get(job->digest)) {
      payload.data = hit->data;
      payload.bytes = hit->bytes;
      cache_hit = true;
    }
  }
  uint64_t engine_job_id = 0;
  if (!cache_hit) {
    // Bind a fresh engine job id for the duration: Context::RunJob (and
    // EnsureShuffleDependencies) reuse the ambient id, so every stage
    // this job runs carries it in StageStat::job_id — that is how
    // per-tenant cost shows up in the trace.
    engine_job_id = ctx_->NextJobId();
    internal::ScopedJobId scope(engine_job_id);
    try {
      Result<Payload> r = job->fn();
      if (r.ok()) {
        payload = std::move(r).ValueOrDie();
      } else {
        status = r.status();
      }
    } catch (const std::exception& e) {
      status = Status::Internal(std::string("job threw: ") + e.what());
    } catch (...) {
      status = Status::Internal("job threw a non-std exception");
    }
    if (status.ok() && job->digest != 0 && cache_ != nullptr) {
      cache_->Put(job->digest, {payload.data, payload.bytes});
    }
  }
  MutexLock lock(&mu_);
  job->done_us = ctx_->NowMicros();
  --running_;
  committed_ -= job->estimate;
  job->payload = std::move(payload);
  job->status = std::move(status);
  job->cache_hit = cache_hit;
  job->done = true;
  --outstanding_;
  Session* s = SessionLocked(job->session);
  {
    MutexLock qlock(&s->queue_mu);
    if (job->status.ok()) {
      ++s->completed;
    } else {
      ++s->failed;
    }
    if (cache_hit) ++s->cache_hits;
    s->run_us += job->done_us - job->dispatch_us;
    if (engine_job_id != 0) s->engine_job_ids.push_back(engine_job_id);
  }
  const uint64_t run = job->done_us - job->dispatch_us;
  const uint64_t e2e = job->done_us - job->submit_us;
  ctx_->metrics().job_run_us.Observe(static_cast<double>(run));
  ctx_->metrics().job_e2e_us.Observe(static_cast<double>(e2e));
  s->run_hist.Observe(static_cast<double>(run));
  s->e2e_hist.Observe(static_cast<double>(e2e));
  ctx_->metrics().jobs_served.fetch_add(1);
  work_cv_.NotifyAll();  // freed headroom: re-scan deferred jobs
  done_cv_.NotifyAll();
}

uint64_t EstimateJobBytes(Context* ctx, internal::NodeBase* root,
                          uint64_t default_per_partition) {
  if (root == nullptr) return default_per_partition;
  uint64_t total = 0;
  std::unordered_set<const internal::NodeBase*> visited;
  std::vector<internal::NodeBase*> stack{root};
  while (!stack.empty()) {
    internal::NodeBase* n = stack.back();
    stack.pop_back();
    if (!visited.insert(n).second) continue;
    const auto parts = static_cast<uint64_t>(n->num_partitions());
    const NodeProfileSnapshot snap = ctx->profile().Snapshot(n->id());
    if (snap.invocations > 0 && snap.bytes_out > 0) {
      total += snap.bytes_out / snap.invocations * parts;
    } else {
      total += default_per_partition * parts;
    }
    for (internal::NodeBase* p : n->Parents()) stack.push_back(p);
  }
  return total == 0 ? default_per_partition : total;
}

}  // namespace spangle
