#include "engine/executor_pool.h"

#include "common/logging.h"

namespace spangle {

namespace {

// Set while the current thread is executing a task body; RunAll CHECKs it
// so a nested stage barrier fails loudly instead of deadlocking.
thread_local bool tl_in_task = false;

// Lane id of the current thread (worker threads get theirs at spawn,
// driver threads on their first RunAll). -1 = not yet assigned.
thread_local int tl_lane = -1;

}  // namespace

ExecutorPool::ExecutorPool(int num_workers)
    : num_workers_(num_workers),
      epoch_(std::chrono::steady_clock::now()),
      next_driver_lane_(num_workers - 1) {
  SPANGLE_CHECK_GE(num_workers, 1);
  // Driver threads participate in RunAll, so spawn one fewer thread.
  const int extra = num_workers - 1;
  workers_.reserve(extra);
  for (int i = 0; i < extra; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ExecutorPool::~ExecutorPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (auto& t : workers_) t.join();
}

int ExecutorPool::LaneForThisThread() {
  if (tl_lane < 0) tl_lane = next_driver_lane_.fetch_add(1);
  return tl_lane;
}

void ExecutorPool::RunAll(std::vector<std::function<void()>> tasks,
                          const TaskObserver& observer) {
  SPANGLE_CHECK(!tl_in_task)
      << "ExecutorPool::RunAll called from inside a task (lane "
      << tl_lane << "): a stage cannot launch a nested stage — restructure "
      << "the computation so stages are submitted from the driver or a "
      << "scheduler thread";
  if (tasks.empty()) return;
  auto batch = std::make_shared<Batch>();
  batch->tasks = std::move(tasks);
  batch->observer = observer;
  batch->pending = batch->tasks.size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    active_.push_back(batch);
  }
  work_ready_.notify_all();
  // Help drain our own batch (never another driver's: returning promptly
  // once our batch finishes matters more than global throughput here).
  while (RunOneTask(batch.get())) {
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    batch_done_.wait(lock, [&] { return batch->pending == 0; });
    for (auto it = active_.begin(); it != active_.end(); ++it) {
      if (it->get() == batch.get()) {
        active_.erase(it);
        break;
      }
    }
  }
}

bool ExecutorPool::AnyRunnableLocked() const {
  for (const auto& b : active_) {
    if (b->next < b->tasks.size()) return true;
  }
  return false;
}

bool ExecutorPool::RunOneTask(Batch* only) {
  std::shared_ptr<Batch> batch;
  std::function<void()> task;
  int index = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (only != nullptr) {
      if (only->next < only->tasks.size()) {
        for (const auto& b : active_) {
          if (b.get() == only) {
            batch = b;
            break;
          }
        }
      }
    } else {
      for (const auto& b : active_) {
        if (b->next < b->tasks.size()) {
          batch = b;
          break;
        }
      }
    }
    if (batch == nullptr) return false;
    index = static_cast<int>(batch->next);
    task = std::move(batch->tasks[batch->next]);
    ++batch->next;
  }
  TaskTiming timing;
  timing.index = index;
  timing.lane = LaneForThisThread();
  timing.start_us = NowMicros();
  tl_in_task = true;
  task();
  tl_in_task = false;
  timing.duration_us = NowMicros() - timing.start_us;
  if (batch->observer) batch->observer(timing);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (--batch->pending == 0) batch_done_.notify_all();
  }
  return true;
}

void ExecutorPool::WorkerLoop(int lane) {
  tl_lane = lane;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock,
                       [this] { return shutdown_ || AnyRunnableLocked(); });
      if (shutdown_) return;
    }
    while (RunOneTask(nullptr)) {
    }
  }
}

}  // namespace spangle
