#include "engine/executor_pool.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace spangle {

namespace {

// Depth of task bodies currently executing on this thread. 0 = a plain
// driver/worker thread; >0 = inside a task. RunAll consults it so a
// nested submission (a task that itself runs a batch — e.g. a served job
// whose stage interleaves with another job's stages on the shared pool)
// drains its own batch inline instead of parking a lane on the barrier.
thread_local int tl_task_depth = 0;

// Lane id of the current thread (worker threads get theirs at spawn,
// driver threads on their first RunAll). -1 = not yet assigned.
thread_local int tl_lane = -1;

// Human-readable message for a captured task exception.
std::string DescribeError(const std::exception_ptr& err) {
  try {
    std::rethrow_exception(err);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown non-std exception";
  }
}

}  // namespace

ExecutorPool::ExecutorPool(int num_workers)
    : num_workers_(num_workers),
      epoch_(std::chrono::steady_clock::now()),
      next_driver_lane_(num_workers - 1) {
  SPANGLE_CHECK_GE(num_workers, 1);
  // Driver threads participate in RunAll, so spawn one fewer thread.
  const int extra = num_workers - 1;
  workers_.reserve(extra);
  for (int i = 0; i < extra; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ExecutorPool::~ExecutorPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_ready_.NotifyAll();
  for (auto& t : workers_) t.join();
}

int ExecutorPool::LaneForThisThread() {
  if (tl_lane < 0) tl_lane = next_driver_lane_.fetch_add(1);
  return tl_lane;
}

ExecutorPool::BatchResult ExecutorPool::RunAll(
    std::vector<Task> tasks, const TaskObserver& observer,
    const SpeculationOptions& speculation) {
  // A nested call (RunAll from inside a task body) is legal: each batch
  // carries its own queue/barrier state, so the nested caller drains its
  // own batch inline and returns. It must run primaries itself — every
  // worker lane may be occupied by the batches that got us here, so the
  // only lane guaranteed to make progress on the nested batch is this
  // one. (Speculation's drive-from-the-monitor trick is therefore
  // disabled at depth: with the driver consuming primaries the batch
  // cannot stall waiting for a lane.)
  const bool nested = tl_task_depth > 0;
  BatchResult result;
  if (tasks.empty()) return result;
  const int n = static_cast<int>(tasks.size());
  auto batch = std::make_shared<Batch>(&mu_);
  batch->tasks = std::move(tasks);
  batch->observer = observer;
  {
    // Guarded state is populated under the lock it is guarded by, even
    // though the batch is not yet visible to workers — publication and
    // initialization share one critical section.
    MutexLock lock(&mu_);
    batch->mu->AssertHeld();
    batch->slots.resize(n);
    batch->outstanding = static_cast<size_t>(n);
    for (int i = 0; i < n; ++i) {
      batch->queue.push_back({i, 0});
      batch->slot(i).launched = 1;
    }
    active_.push_back(batch);
  }
  work_ready_.NotifyAll();
  // Help drain our own batch (never another driver's: returning promptly
  // once our batch finishes matters more than global throughput here).
  // When speculating with worker threads available, the driver must NOT
  // take primary attempts: if it picked up the straggler itself, no
  // thread would be left to monitor the batch and launch the copy. It
  // stays the monitor and runs only the speculative copies it creates
  // (the straggling originals may occupy every worker lane, so the
  // copies' only guaranteed lane is this driver).
  const bool driver_runs_primaries =
      nested || !speculation.enabled || num_workers_ == 1;
  if (driver_runs_primaries) {
    while (RunOneTask(batch.get())) {
    }
  }
  {
    MutexLock lock(&mu_);
    batch->mu->AssertHeld();
    while (batch->outstanding != 0) {
      if (!speculation.enabled) {
        // Explicit wait loop, not a predicate lambda: outstanding is
        // guarded and the analysis cannot see the lock inside a lambda
        // body (same idiom as WorkerLoop).
        while (batch->outstanding != 0) batch_done_.Wait(mu_);
        break;
      }
      // Speculation: wake periodically and re-launch stragglers. The
      // predicate-less WaitFor may wake spuriously; the enclosing loop
      // re-checks outstanding either way.
      const uint64_t tick =
          std::max<uint64_t>(speculation.check_interval_us, 50);
      batch_done_.WaitFor(mu_, std::chrono::microseconds(tick));
      if (batch->outstanding == 0) break;
      if (MaybeSpeculateLocked(*batch, speculation)) {
        work_ready_.NotifyAll();
      }
      lock.Unlock();
      while (RunOneTask(batch.get(),
                        /*speculative_only=*/!driver_runs_primaries)) {
      }
      lock.Lock();
    }
    for (auto it = active_.begin(); it != active_.end(); ++it) {
      if (it->get() == batch.get()) {
        active_.erase(it);
        break;
      }
    }
    result.tasks.resize(n);
    for (int i = 0; i < n; ++i) {
      Slot& s = batch->slot(i);
      result.tasks[i] = {std::move(s.status), std::move(s.error), s.launched};
    }
    result.speculative_launches = batch->speculative_launches;
  }
  return result;
}

void ExecutorPool::RunAll(std::vector<std::function<void()>> tasks,
                          const TaskObserver& observer) {
  std::vector<Task> wrapped;
  wrapped.reserve(tasks.size());
  for (auto& t : tasks) {
    wrapped.emplace_back([t = std::move(t)](int) { t(); });
  }
  BatchResult result = RunAll(std::move(wrapped), observer);
  for (auto& tr : result.tasks) {
    if (tr.error != nullptr) std::rethrow_exception(tr.error);
  }
}

bool ExecutorPool::MaybeSpeculateLocked(Batch& b,
                                        const SpeculationOptions& spec) {
  b.mu->AssertHeld();
  const int n = static_cast<int>(b.slots.size());
  std::vector<uint64_t> durations;
  durations.reserve(n);
  for (int i = 0; i < n; ++i) {
    const Slot& s = b.slot(i);
    if (s.returned > 0) durations.push_back(s.first_duration_us);
  }
  const int completed = static_cast<int>(durations.size());
  const int min_completed = std::max(
      1, static_cast<int>(std::ceil(spec.min_completed_fraction * n)));
  if (completed < min_completed || completed == n) return false;
  auto mid = durations.begin() + durations.size() / 2;
  std::nth_element(durations.begin(), mid, durations.end());
  const uint64_t threshold = std::max<uint64_t>(
      static_cast<uint64_t>(static_cast<double>(*mid) * spec.multiplier),
      spec.min_runtime_us);
  const uint64_t now = NowMicros();
  bool launched_any = false;
  for (int i = 0; i < n; ++i) {
    Slot& s = b.slot(i);
    if (s.returned > 0 || s.speculated || s.launched != 1 ||
        s.first_start_us == 0) {
      continue;
    }
    if (now - s.first_start_us < threshold) continue;
    b.queue.push_back({i, 1});
    s.launched = 2;
    s.speculated = true;
    ++b.outstanding;
    ++b.speculative_launches;
    launched_any = true;
  }
  return launched_any;
}

bool ExecutorPool::AnyRunnableLocked() const {
  for (const auto& b : active_) {
    b->mu->AssertHeld();
    if (!b->queue.empty()) return true;
  }
  return false;
}

bool ExecutorPool::RunOneTask(Batch* only, bool speculative_only) {
  std::shared_ptr<Batch> batch;
  WorkItem item;
  {
    MutexLock lock(&mu_);
    if (only != nullptr) {
      only->mu->AssertHeld();
      if (!only->queue.empty()) {
        for (const auto& b : active_) {
          if (b.get() == only) {
            batch = b;
            break;
          }
        }
      }
    } else {
      for (const auto& b : active_) {
        b->mu->AssertHeld();
        if (!b->queue.empty()) {
          batch = b;
          break;
        }
      }
    }
    if (batch == nullptr) return false;
    batch->mu->AssertHeld();
    if (speculative_only) {
      auto it = batch->queue.begin();
      while (it != batch->queue.end() && it->attempt == 0) ++it;
      if (it == batch->queue.end()) return false;
      item = *it;
      batch->queue.erase(it);
    } else {
      item = batch->queue.front();
      batch->queue.pop_front();
    }
    Slot& s = batch->slot(item.index);
    if (s.first_start_us == 0) s.first_start_us = NowMicros();
  }
  TaskTiming timing;
  timing.index = item.index;
  timing.attempt = item.attempt;
  timing.lane = LaneForThisThread();
  timing.start_us = NowMicros();
  std::exception_ptr err;
  ++tl_task_depth;  // depth, not a flag: nested batches restore the outer
                    // task's state when they unwind
  try {
    batch->tasks[item.index](item.attempt);
  } catch (...) {
    err = std::current_exception();
  }
  --tl_task_depth;
  timing.duration_us = NowMicros() - timing.start_us;
  if (batch->observer) batch->observer(timing);
  {
    MutexLock lock(&mu_);
    batch->mu->AssertHeld();
    Slot& s = batch->slot(item.index);
    ++s.returned;
    if (s.returned == 1) s.first_duration_us = timing.duration_us;
    if (err == nullptr) {
      // A normal return means the task body either ran to completion in
      // this attempt or was already completed by the other attempt
      // (discarded loser) — either way the task is settled successfully.
      s.succeeded = true;
      s.status = Status::OK();
      s.error = nullptr;
    } else if (!s.succeeded) {
      s.status = Status::Internal(DescribeError(err));
      s.error = err;
    }
    // Drop our reference to the exception while still holding mu_. The
    // slot (or nothing, for a discarded loser) now owns the object, so
    // the final release — and the free TSan watches — always happens on
    // the driver after it takes mu_ at the barrier, never on a worker
    // racing the driver's reads of the exception contents.
    err = nullptr;
    if (--batch->outstanding == 0) batch_done_.NotifyAll();
  }
  return true;
}

void ExecutorPool::WorkerLoop(int lane) {
  tl_lane = lane;
  for (;;) {
    {
      // Explicit wait loop (not a predicate lambda): shutdown_ is
      // GUARDED_BY(mu_) and AnyRunnableLocked REQUIRES(mu_), which the
      // analysis can only see in this scope, where the lock is held.
      MutexLock lock(&mu_);
      while (!shutdown_ && !AnyRunnableLocked()) work_ready_.Wait(mu_);
      if (shutdown_) return;
    }
    while (RunOneTask(nullptr)) {
    }
  }
}

}  // namespace spangle
