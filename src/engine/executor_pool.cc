#include "engine/executor_pool.h"

#include "common/logging.h"

namespace spangle {

ExecutorPool::ExecutorPool(int num_workers) : num_workers_(num_workers) {
  SPANGLE_CHECK_GE(num_workers, 1);
  // The driver thread participates in RunAll, so spawn one fewer thread.
  const int extra = num_workers - 1;
  workers_.reserve(extra);
  for (int i = 0; i < extra; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ExecutorPool::~ExecutorPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (auto& t : workers_) t.join();
}

void ExecutorPool::RunAll(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_ = std::move(tasks);
    next_task_ = 0;
    pending_ = batch_.size();
    ++batch_id_;
  }
  work_ready_.notify_all();
  DrainCurrentBatch();
  std::unique_lock<std::mutex> lock(mu_);
  batch_done_.wait(lock, [this] { return pending_ == 0; });
  batch_.clear();
}

void ExecutorPool::DrainCurrentBatch() {
  for (;;) {
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (next_task_ >= batch_.size()) return;
      task = std::move(batch_[next_task_]);
      ++next_task_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
      if (pending_ == 0) batch_done_.notify_all();
    }
  }
}

void ExecutorPool::WorkerLoop() {
  uint64_t seen_batch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this, seen_batch] {
        return shutdown_ ||
               (batch_id_ != seen_batch && next_task_ < batch_.size());
      });
      if (shutdown_) return;
      seen_batch = batch_id_;
    }
    DrainCurrentBatch();
  }
}

}  // namespace spangle
