#ifndef SPANGLE_ENGINE_RUNTIME_PROFILE_H_
#define SPANGLE_ENGINE_RUNTIME_PROFILE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "engine/metrics.h"

namespace spangle {

class Context;

namespace internal {
class NodeBase;
}  // namespace internal

/// Chunk storage modes mirrored as plain ints so the engine layer can
/// aggregate them without depending on the array layer's ChunkMode enum
/// (0 = dense, 1 = sparse, 2 = super-sparse; see array/chunk.h).
inline constexpr int kProfileChunkModes = 3;

/// Density histogram bucket count: EngineMetrics::DensityBounds() edges
/// plus the open overflow bucket.
inline constexpr int kProfileDensityBuckets = 9;

/// Executed actuals for one lineage node, accumulated by worker threads
/// through cheap relaxed atomics. One NodeProfile per node id lives in
/// the context's RuntimeProfile for the node's lifetime; per-query views
/// are snapshot diffs (see ProfiledRun).
struct NodeProfile {
  std::atomic<uint64_t> invocations{0};  // GetPartition calls
  std::atomic<uint64_t> cache_hits{0};   // served from the block store
  std::atomic<uint64_t> rows_in{0};      // records pulled from parents
  std::atomic<uint64_t> rows_out{0};     // records handed to consumers
  std::atomic<uint64_t> bytes_out{0};    // estimated bytes of computed output
  std::atomic<uint64_t> self_us{0};      // wall time minus child time

  // Paper-specific array stats, attributed to the operator whose task
  // body triggered them (chunk.cc / mask_rdd.cc hooks).
  std::array<std::atomic<uint64_t>, kProfileChunkModes> chunks_built{};
  std::array<std::atomic<uint64_t>, kProfileChunkModes * kProfileChunkModes>
      mode_transitions{};  // [from * 3 + to]
  std::array<std::atomic<uint64_t>, kProfileDensityBuckets> density_hist{};
};

/// Plain-value copy of a NodeProfile, diffable for per-query scoping.
struct NodeProfileSnapshot {
  uint64_t invocations = 0;
  uint64_t cache_hits = 0;
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  uint64_t bytes_out = 0;
  uint64_t self_us = 0;
  std::array<uint64_t, kProfileChunkModes> chunks_built{};
  std::array<uint64_t, kProfileChunkModes * kProfileChunkModes>
      mode_transitions{};
  std::array<uint64_t, kProfileDensityBuckets> density_hist{};

  NodeProfileSnapshot operator-(const NodeProfileSnapshot& rhs) const;
  NodeProfileSnapshot& operator+=(const NodeProfileSnapshot& rhs);

  uint64_t TotalChunksBuilt() const;
  uint64_t TotalModeTransitions() const;
  uint64_t TotalDensityObservations() const;
};

/// Per-context profile store: one NodeProfile per lineage node id, plus a
/// bounded ring of counter-track samples (cache pressure, shuffle volume,
/// shuffle concurrency over time) merged into DumpTrace. Population is
/// gated by Context::set_profiling_enabled — when off, the thread-local
/// hook pointer stays null and every hook is a single branch.
class RuntimeProfile {
 public:
  explicit RuntimeProfile(EngineMetrics* metrics) : metrics_(metrics) {}

  RuntimeProfile(const RuntimeProfile&) = delete;
  RuntimeProfile& operator=(const RuntimeProfile&) = delete;

  /// The profile slot for `node_id`, created on first use. Lookup of an
  /// existing slot (the per-partition hot path) takes only a shared lock;
  /// first use upgrades to an exclusive lock to insert.
  NodeProfile* GetOrCreate(uint64_t node_id) EXCLUDES(mu_);

  /// Current values for `node_id`; zeros when the node never executed.
  NodeProfileSnapshot Snapshot(uint64_t node_id) const EXCLUDES(mu_);

  /// Drops every node profile and counter sample (metrics are untouched).
  void Clear() EXCLUDES(mu_, samples_mu_);

  // Hook bodies, invoked via the prof:: free functions below from the
  // array layer. `np` may be null (instrumented code running outside an
  // operator scope); the context-level EngineMetrics aggregates are
  // updated either way.
  void RecordChunk(NodeProfile* np, int mode, uint64_t num_cells,
                   uint64_t num_valid);
  void RecordModeTransition(NodeProfile* np, int from_mode, int to_mode);
  void RecordMaskDensity(NodeProfile* np, uint64_t set_bits,
                         uint64_t num_bits);

  /// One point on the trace counter tracks.
  struct CounterSample {
    uint64_t t_us = 0;
    uint64_t bytes_cached = 0;
    uint64_t shuffle_bytes = 0;
    uint64_t concurrent_shuffles = 0;
  };

  /// Samples the gauge-like metrics at `now_us` (called by RunStage at
  /// stage start/end). Retention is a ring of the most recent samples.
  void SampleCounters(uint64_t now_us) EXCLUDES(samples_mu_);
  std::vector<CounterSample> CounterSamples() const EXCLUDES(samples_mu_);

  EngineMetrics* metrics() const { return metrics_; }

 private:
  static constexpr size_t kMaxCounterSamples = 8192;

  EngineMetrics* metrics_;

  // Reader/writer: worker threads resolving an existing node's profile
  // share the lock; inserts (first touch of a node) and Clear take it
  // exclusively. Never held together with samples_mu_ — Clear acquires
  // them strictly in sequence.
  mutable SharedMutex mu_{LockRank::kProfile, "RuntimeProfile::mu_"};
  std::unordered_map<uint64_t, std::unique_ptr<NodeProfile>> nodes_
      GUARDED_BY(mu_);

  mutable Mutex samples_mu_{LockRank::kProfileSamples,
                            "RuntimeProfile::samples_mu_"};
  std::deque<CounterSample> samples_ GUARDED_BY(samples_mu_);
};

/// Thread-local profiling hooks. Context::RunStage binds the context's
/// RuntimeProfile to the worker thread around each task body (when
/// profiling is enabled); Node::GetPartition opens an OperatorScope per
/// partition computation; the array layer reports chunk/mask structure
/// through the free functions. Everything is a no-op on threads with no
/// bound profile, so driver-side code and profile-off runs pay one
/// pointer test per hook.
namespace prof {

class OperatorScope;

namespace detail {
inline thread_local RuntimeProfile* tl_profile = nullptr;
inline thread_local OperatorScope* tl_scope = nullptr;

inline uint64_t MonoMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace detail

/// RAII binding of a RuntimeProfile to the current thread (task body).
class ScopedThreadProfile {
 public:
  explicit ScopedThreadProfile(RuntimeProfile* p) : prev_(detail::tl_profile) {
    detail::tl_profile = p;
  }
  ~ScopedThreadProfile() { detail::tl_profile = prev_; }
  ScopedThreadProfile(const ScopedThreadProfile&) = delete;
  ScopedThreadProfile& operator=(const ScopedThreadProfile&) = delete;

 private:
  RuntimeProfile* prev_;
};

inline RuntimeProfile* ThreadProfile() { return detail::tl_profile; }

/// One GetPartition invocation of one lineage node. Scopes nest as
/// operators pull from their parents; each records *self* time (total
/// minus time spent inside child scopes) and charges its output rows to
/// the consuming scope's rows_in — the Spark SQL UI accounting.
class OperatorScope {
 public:
  explicit OperatorScope(uint64_t node_id) {
    profile_ = detail::tl_profile;
    if (profile_ == nullptr) return;
    np_ = profile_->GetOrCreate(node_id);
    parent_ = detail::tl_scope;
    detail::tl_scope = this;
    start_us_ = detail::MonoMicros();
  }

  OperatorScope(const OperatorScope&) = delete;
  OperatorScope& operator=(const OperatorScope&) = delete;

  ~OperatorScope() {
    if (profile_ == nullptr) return;
    const uint64_t total = detail::MonoMicros() - start_us_;
    const uint64_t self = total > child_us_ ? total - child_us_ : 0;
    np_->invocations.fetch_add(1, std::memory_order_relaxed);
    np_->self_us.fetch_add(self, std::memory_order_relaxed);
    np_->rows_out.fetch_add(rows_, std::memory_order_relaxed);
    np_->bytes_out.fetch_add(bytes_, std::memory_order_relaxed);
    if (cached_) np_->cache_hits.fetch_add(1, std::memory_order_relaxed);
    detail::tl_scope = parent_;
    if (parent_ != nullptr) {
      parent_->child_us_ += total;
      parent_->np_->rows_in.fetch_add(rows_, std::memory_order_relaxed);
    }
  }

  /// True when this thread is profiling (guards optional cost like size
  /// estimation at the call site).
  bool active() const { return profile_ != nullptr; }

  /// The partition was computed: record its row count and byte estimate.
  void FinishComputed(uint64_t rows, uint64_t bytes) {
    rows_ = rows;
    bytes_ = bytes;
  }

  /// The partition was served from the block store.
  void FinishCached(uint64_t rows) {
    rows_ = rows;
    cached_ = true;
  }

  NodeProfile* node_profile() const { return np_; }

 private:
  RuntimeProfile* profile_ = nullptr;
  NodeProfile* np_ = nullptr;
  OperatorScope* parent_ = nullptr;
  uint64_t start_us_ = 0;
  uint64_t child_us_ = 0;
  uint64_t rows_ = 0;
  uint64_t bytes_ = 0;
  bool cached_ = false;
};

/// Chunk::FromCells reports every chunk it lays out: the chosen storage
/// mode and the valid-cell density.
inline void RecordChunkBuilt(int mode, uint64_t num_cells,
                             uint64_t num_valid) {
  RuntimeProfile* p = detail::tl_profile;
  if (p == nullptr) return;
  OperatorScope* s = detail::tl_scope;
  p->RecordChunk(s != nullptr ? s->node_profile() : nullptr, mode, num_cells,
                 num_valid);
}

/// Chunk::ConvertTo reports dense ↔ sparse ↔ super-sparse conversions.
inline void RecordModeTransition(int from_mode, int to_mode) {
  RuntimeProfile* p = detail::tl_profile;
  if (p == nullptr) return;
  OperatorScope* s = detail::tl_scope;
  p->RecordModeTransition(s != nullptr ? s->node_profile() : nullptr,
                          from_mode, to_mode);
}

/// MaskRdd combinators report the density of each produced bitmask.
inline void RecordMaskDensity(uint64_t set_bits, uint64_t num_bits) {
  RuntimeProfile* p = detail::tl_profile;
  if (p == nullptr) return;
  OperatorScope* s = detail::tl_scope;
  p->RecordMaskDensity(s != nullptr ? s->node_profile() : nullptr, set_bits,
                       num_bits);
}

}  // namespace prof

/// One lineage node of an executed plan, annotated with actuals.
struct AnalyzedNode {
  uint64_t node_id = 0;
  std::string name;
  int depth = 0;  // distance from the action's root (preorder indent)
  int num_partitions = 0;
  bool is_shuffle = false;
  bool was_materialized = false;  // shuffle output existed before the run
  bool reused = false;            // repeat visit of a diamond lineage
  NodeProfileSnapshot actuals;
};

/// Static plan annotated with executed actuals — the ExplainAnalyze
/// result, machine-readable for tests and renderable for humans.
struct AnalyzedPlan {
  std::string action;
  uint64_t wall_us = 0;
  uint64_t stages_run = 0;
  // Chunk-frame codec activity during this run (snapshot diffs of the
  // global counters): record-format vs encoded bytes, encode time, and
  // shuffle block commits deduplicated by content hash.
  uint64_t codec_bytes_raw = 0;
  uint64_t codec_bytes_encoded = 0;
  uint64_t codec_encode_time_us = 0;
  uint64_t shuffle_block_dedup_hits = 0;
  // Serving-layer activity during this run (snapshot diffs): result-cache
  // traffic and admission decisions made by an attached JobServer. All
  // zero when nothing was served while the run was open.
  uint64_t result_cache_hits = 0;
  uint64_t result_cache_misses = 0;
  uint64_t admission_queued = 0;
  uint64_t admission_rejected = 0;
  // Served-job latency percentiles (us) over jobs finished during this
  // run, estimated from the serving histograms' bucket diffs (wait =
  // submit → dispatch, run = dispatch → done, e2e = submit → done). All
  // zero when no JobServer completed a job while the run was open.
  uint64_t jobs_served = 0;
  double job_wait_p50_us = 0, job_wait_p95_us = 0, job_wait_p99_us = 0;
  double job_run_p50_us = 0, job_run_p95_us = 0, job_run_p99_us = 0;
  double job_e2e_p50_us = 0, job_e2e_p95_us = 0, job_e2e_p99_us = 0;
  // Fleet/RPC activity during this run (snapshot diffs): RPC roundtrips
  // and bytes on the wire, remote shuffle fetches, daemon restarts, and
  // heartbeat misses. All zero in LOCAL mode.
  uint64_t rpc_roundtrips = 0;
  uint64_t rpc_bytes_sent = 0;
  uint64_t rpc_bytes_received = 0;
  uint64_t remote_shuffle_fetches = 0;
  uint64_t executor_restarts = 0;
  uint64_t heartbeat_misses = 0;
  NodeProfileSnapshot totals;      // sum over non-reused nodes
  std::vector<AnalyzedNode> nodes;  // preorder, roots first
  std::vector<StageStat> stages;    // stages executed during the run

  std::string ToString() const;

  /// First node whose name contains `name_substr` (nullptr when absent).
  const AnalyzedNode* Find(const std::string& name_substr) const;
};

/// Measurement session behind ExplainAnalyze: captures the lineage tree
/// and per-node counter snapshots before the action executes, then diffs
/// after it — so an ExplainAnalyze on a shared/cached lineage reports
/// only this query's execution. Forces profiling on for the duration.
class ProfiledRun {
 public:
  ProfiledRun(Context* ctx, const std::vector<internal::NodeBase*>& roots,
              std::string action);

  /// Diffs the snapshots and assembles the annotated plan. Call once,
  /// after the action has run.
  AnalyzedPlan Finish();

 private:
  Context* ctx_;
  std::string action_;
  std::vector<AnalyzedNode> nodes_;  // actuals hold the BEFORE snapshots
  bool prev_enabled_ = true;
  uint64_t start_us_ = 0;
  uint64_t stages_before_ = 0;
  uint64_t max_stage_seq_before_ = 0;
  bool any_stage_before_ = false;
  uint64_t codec_raw_before_ = 0;
  uint64_t codec_encoded_before_ = 0;
  uint64_t codec_time_before_ = 0;
  uint64_t dedup_hits_before_ = 0;
  uint64_t cache_hits_before_ = 0;
  uint64_t cache_misses_before_ = 0;
  uint64_t adm_queued_before_ = 0;
  uint64_t adm_rejected_before_ = 0;
  uint64_t jobs_served_before_ = 0;
  std::vector<uint64_t> wait_buckets_before_;
  std::vector<uint64_t> run_buckets_before_;
  std::vector<uint64_t> e2e_buckets_before_;
  uint64_t rpc_roundtrips_before_ = 0;
  uint64_t rpc_sent_before_ = 0;
  uint64_t rpc_received_before_ = 0;
  uint64_t remote_fetches_before_ = 0;
  uint64_t restarts_before_ = 0;
  uint64_t hb_misses_before_ = 0;
};

}  // namespace spangle

#endif  // SPANGLE_ENGINE_RUNTIME_PROFILE_H_
