#include "engine/metrics_export.h"

#include <cstdio>
#include <sstream>

// Lock-free by construction: every reader here consumes either atomic
// counters or a value snapshot (EngineMetrics::StageStats() copies the
// ring under EngineMetrics::stage_mu_ before returning), so no function
// in this TU takes a lock or needs thread-safety annotations.

namespace spangle {

namespace {

/// Formats a double as a valid JSON number (no inf/nan, which JSON
/// forbids; both are clamped to 0).
std::string JsonNumber(double v) {
  if (!(v == v) || v > 1e308 || v < -1e308) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string MetricsJson(const EngineMetrics& metrics) {
  std::ostringstream os;
  os << "{\"metrics\":[";
  bool first = true;
  for (const MetricDef& m : metrics.registry().metrics()) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << JsonEscape(m.name) << "\",\"kind\":\""
       << MetricKindName(m.kind) << "\",\"unit\":\"" << JsonEscape(m.unit)
       << "\",\"help\":\"" << JsonEscape(m.help) << "\"";
    if (m.kind == MetricKind::kHistogram) {
      os << ",\"count\":" << m.histogram->count()
         << ",\"sum\":" << JsonNumber(m.histogram->sum()) << ",\"bounds\":[";
      const auto& bounds = m.histogram->bounds();
      for (size_t i = 0; i < bounds.size(); ++i) {
        if (i > 0) os << ",";
        os << JsonNumber(bounds[i]);
      }
      os << "],\"bucket_counts\":[";
      const auto counts = m.histogram->BucketCounts();
      for (size_t i = 0; i < counts.size(); ++i) {
        if (i > 0) os << ",";
        os << counts[i];
      }
      os << "]";
    } else {
      os << ",\"value\":" << m.value->load(std::memory_order_relaxed);
    }
    os << "}";
  }
  os << "],\"stage_stats\":{\"retained\":" << metrics.StageStats().size()
     << ",\"dropped\":" << metrics.stage_stats_dropped() << "}}";
  return os.str();
}

std::string MetricsPrometheus(const EngineMetrics& metrics,
                              const std::string& prefix) {
  std::ostringstream os;
  for (const MetricDef& m : metrics.registry().metrics()) {
    const std::string name = prefix + m.name;
    // HELP text: Prometheus escapes only backslash and newline here.
    std::string help;
    for (char c : m.help) {
      if (c == '\\') {
        help += "\\\\";
      } else if (c == '\n') {
        help += "\\n";
      } else {
        help += c;
      }
    }
    os << "# HELP " << name << " " << help << "\n";
    if (m.kind == MetricKind::kHistogram) {
      os << "# TYPE " << name << " histogram\n";
      const auto& bounds = m.histogram->bounds();
      const auto counts = m.histogram->BucketCounts();
      uint64_t cumulative = 0;
      for (size_t i = 0; i < bounds.size(); ++i) {
        cumulative += counts[i];
        char bound[64];
        std::snprintf(bound, sizeof(bound), "%g", bounds[i]);
        os << name << "_bucket{le=\"" << bound << "\"} " << cumulative
           << "\n";
      }
      cumulative += counts[bounds.size()];
      os << name << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
      char sum[64];
      std::snprintf(sum, sizeof(sum), "%g", m.histogram->sum());
      os << name << "_sum " << sum << "\n";
      os << name << "_count " << m.histogram->count() << "\n";
    } else {
      const bool gauge = m.kind == MetricKind::kGauge;
      os << "# TYPE " << name << " " << (gauge ? "gauge" : "counter")
         << "\n";
      os << name << " " << m.value->load(std::memory_order_relaxed) << "\n";
    }
  }
  return os.str();
}

bool WriteStringToFile(const std::string& content, const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = std::fclose(f) == 0 && written == content.size();
  return ok;
}

}  // namespace spangle
