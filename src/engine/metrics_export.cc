#include "engine/metrics_export.h"

#include <cstdio>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

// Lock-free by construction: every reader here consumes either atomic
// counters or a value snapshot (EngineMetrics::StageStats() copies the
// ring under EngineMetrics::stage_mu_ before returning), so no function
// in this TU takes a lock or needs thread-safety annotations.

namespace spangle {

namespace {

/// Formats a double as a valid JSON number (no inf/nan, which JSON
/// forbids; both are clamped to 0).
std::string JsonNumber(double v) {
  if (!(v == v) || v > 1e308 || v < -1e308) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// The body shared by both MetricsJson overloads: everything inside the
/// outer object except the optional "fleet" array and the closing brace.
void AppendMetricsJsonBody(const EngineMetrics& metrics,
                           std::ostringstream& os) {
  os << "{\"metrics\":[";
  bool first = true;
  for (const MetricDef& m : metrics.registry().metrics()) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << JsonEscape(m.name) << "\",\"kind\":\""
       << MetricKindName(m.kind) << "\",\"unit\":\"" << JsonEscape(m.unit)
       << "\",\"help\":\"" << JsonEscape(m.help) << "\"";
    if (m.kind == MetricKind::kHistogram) {
      os << ",\"count\":" << m.histogram->count()
         << ",\"sum\":" << JsonNumber(m.histogram->sum()) << ",\"bounds\":[";
      const auto& bounds = m.histogram->bounds();
      for (size_t i = 0; i < bounds.size(); ++i) {
        if (i > 0) os << ",";
        os << JsonNumber(bounds[i]);
      }
      os << "],\"bucket_counts\":[";
      const auto counts = m.histogram->BucketCounts();
      for (size_t i = 0; i < counts.size(); ++i) {
        if (i > 0) os << ",";
        os << counts[i];
      }
      os << "]";
    } else {
      os << ",\"value\":" << m.value->load(std::memory_order_relaxed);
    }
    os << "}";
  }
  os << "],\"stage_stats\":{\"retained\":" << metrics.StageStats().size()
     << ",\"dropped\":" << metrics.stage_stats_dropped() << "}";
}

}  // namespace

std::string MetricsJson(const EngineMetrics& metrics) {
  std::ostringstream os;
  AppendMetricsJsonBody(metrics, os);
  os << "}";
  return os.str();
}

std::string MetricsJson(const EngineMetrics& metrics,
                        const std::vector<FleetExecutorStats>& fleet) {
  std::ostringstream os;
  AppendMetricsJsonBody(metrics, os);
  os << ",\"fleet\":[";
  bool first_exec = true;
  for (const FleetExecutorStats& e : fleet) {
    if (!first_exec) os << ",";
    first_exec = false;
    os << "{\"executor\":" << e.executor
       << ",\"scraped\":" << (e.scraped ? "true" : "false")
       << ",\"blocks_held\":" << e.blocks_held
       << ",\"bytes_in_memory\":" << e.bytes_in_memory
       << ",\"tasks_run\":" << e.tasks_run
       << ",\"spans_dropped\":" << e.spans_dropped
       << ",\"clock_offset_us\":" << e.clock_offset_us
       << ",\"restarts\":" << e.restarts << ",\"metrics\":[";
    for (size_t i = 0; i < e.metric_names.size(); ++i) {
      if (i > 0) os << ",";
      const MetricKind kind = static_cast<MetricKind>(e.metric_kinds[i]);
      os << "{\"name\":\"" << JsonEscape(e.metric_names[i])
         << "\",\"kind\":\"" << MetricKindName(kind)
         << "\",\"value\":" << e.metric_values[i] << "}";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

std::string MetricsPrometheus(const EngineMetrics& metrics,
                              const std::string& prefix) {
  std::ostringstream os;
  for (const MetricDef& m : metrics.registry().metrics()) {
    const std::string name = prefix + m.name;
    // HELP text: Prometheus escapes only backslash and newline here.
    std::string help;
    for (char c : m.help) {
      if (c == '\\') {
        help += "\\\\";
      } else if (c == '\n') {
        help += "\\n";
      } else {
        help += c;
      }
    }
    os << "# HELP " << name << " " << help << "\n";
    if (m.kind == MetricKind::kHistogram) {
      os << "# TYPE " << name << " histogram\n";
      const auto& bounds = m.histogram->bounds();
      const auto counts = m.histogram->BucketCounts();
      uint64_t cumulative = 0;
      for (size_t i = 0; i < bounds.size(); ++i) {
        cumulative += counts[i];
        char bound[64];
        std::snprintf(bound, sizeof(bound), "%g", bounds[i]);
        os << name << "_bucket{le=\"" << bound << "\"} " << cumulative
           << "\n";
      }
      cumulative += counts[bounds.size()];
      os << name << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
      char sum[64];
      std::snprintf(sum, sizeof(sum), "%g", m.histogram->sum());
      os << name << "_sum " << sum << "\n";
      os << name << "_count " << m.histogram->count() << "\n";
    } else {
      const bool gauge = m.kind == MetricKind::kGauge;
      os << "# TYPE " << name << " " << (gauge ? "gauge" : "counter")
         << "\n";
      os << name << " " << m.value->load(std::memory_order_relaxed) << "\n";
    }
  }
  return os.str();
}

std::string MetricsPrometheus(const EngineMetrics& metrics,
                              const std::vector<FleetExecutorStats>& fleet,
                              const std::string& prefix) {
  std::ostringstream os;
  os << MetricsPrometheus(metrics, prefix);

  // Driver-side per-executor families. All series of a family are grouped
  // under one # HELP/# TYPE pair, as the exposition format requires.
  struct Family {
    const char* name;
    const char* type;
    const char* help;
    uint64_t (*value)(const FleetExecutorStats&);
  };
  static const Family kFamilies[] = {
      {"executor_blocks_held", "gauge",
       "Blocks resident on the executor daemon (last heartbeat/scrape)",
       [](const FleetExecutorStats& e) { return e.blocks_held; }},
      {"executor_bytes_in_memory", "gauge",
       "Bytes resident in the executor daemon's block store",
       [](const FleetExecutorStats& e) { return e.bytes_in_memory; }},
      {"executor_tasks_run", "counter",
       "Tasks dispatched to the executor daemon since it started",
       [](const FleetExecutorStats& e) { return e.tasks_run; }},
      {"executor_spans_dropped", "counter",
       "Trace spans the executor daemon dropped to span-ring overflow",
       [](const FleetExecutorStats& e) { return e.spans_dropped; }},
      // Named apart from the registry-wide spangle_executor_restarts
      // counter (total across slots): one family name may not carry two
      // TYPE lines in a single exposition.
      {"executor_slot_restarts", "counter",
       "Times this executor slot's daemon was respawned after a failure",
       [](const FleetExecutorStats& e) { return e.restarts; }},
  };
  for (const Family& fam : kFamilies) {
    const std::string name = prefix + fam.name;
    os << "# HELP " << name << " " << fam.help << "\n";
    os << "# TYPE " << name << " " << fam.type << "\n";
    for (const FleetExecutorStats& e : fleet) {
      os << name << "{executor=\"" << e.executor << "\"} " << fam.value(e)
         << "\n";
    }
  }
  // Clock offset is signed (daemon epoch minus driver epoch), so it gets
  // its own emission instead of squeezing through the uint64 accessor.
  {
    const std::string name = prefix + "executor_clock_offset_us";
    os << "# HELP " << name
       << " Estimated daemon clock offset vs the driver trace epoch"
       << "\n";
    os << "# TYPE " << name << " gauge\n";
    for (const FleetExecutorStats& e : fleet) {
      os << name << "{executor=\"" << e.executor << "\"} "
         << e.clock_offset_us << "\n";
    }
  }

  // Scraped daemon-registry scalars, pivoted so every metric name becomes
  // one family with an executor="N" series per daemon (the scrapes all
  // come from the same binary, but a family is emitted as long as at
  // least one daemon reported it).
  std::vector<std::string> order;
  struct Pivot {
    uint8_t kind = 0;
    std::vector<std::pair<int, uint64_t>> series;
  };
  std::unordered_map<std::string, Pivot> pivot;
  for (const FleetExecutorStats& e : fleet) {
    for (size_t i = 0; i < e.metric_names.size(); ++i) {
      auto it = pivot.find(e.metric_names[i]);
      if (it == pivot.end()) {
        order.push_back(e.metric_names[i]);
        it = pivot.emplace(e.metric_names[i], Pivot{}).first;
        it->second.kind = e.metric_kinds[i];
      }
      it->second.series.emplace_back(e.executor, e.metric_values[i]);
    }
  }
  for (const std::string& metric : order) {
    const Pivot& p = pivot[metric];
    const std::string name = prefix + "executor_daemon_" + metric;
    // Timers (and the flattened histogram _count/_sum pairs) export as
    // counters, matching the single-process exposition.
    const bool gauge = p.kind == static_cast<uint8_t>(MetricKind::kGauge);
    os << "# HELP " << name << " Executor daemon metric " << metric << "\n";
    os << "# TYPE " << name << " " << (gauge ? "gauge" : "counter") << "\n";
    for (const auto& [executor, value] : p.series) {
      os << name << "{executor=\"" << executor << "\"} " << value << "\n";
    }
  }
  return os.str();
}

bool WriteStringToFile(const std::string& content, const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = std::fclose(f) == 0 && written == content.size();
  return ok;
}

}  // namespace spangle
