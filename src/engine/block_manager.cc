#include "engine/block_manager.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <vector>

#include "common/logging.h"

namespace spangle {

namespace {
namespace fs = std::filesystem;

std::string MakeUniqueSpillDir() {
  static std::atomic<uint64_t> counter{0};
  const uint64_t n = counter.fetch_add(1);
  std::error_code ec;
  fs::path base = fs::temp_directory_path(ec);
  if (ec) base = ".";
  return (base / ("spangle-blocks-" + std::to_string(::getpid()) + "-" +
                  std::to_string(n)))
      .string();
}
}  // namespace

BlockManager::BlockManager(const StorageOptions& options, int num_workers,
                           EngineMetrics* metrics)
    : budget_(options.memory_budget_bytes),
      num_workers_(num_workers > 0 ? num_workers : 1),
      metrics_(metrics) {
  if (options.spill_dir.empty()) {
    spill_dir_ = MakeUniqueSpillDir();
    owns_spill_dir_ = true;
  } else {
    spill_dir_ = options.spill_dir;
  }
}

BlockManager::~BlockManager() {
  std::error_code ec;
  if (owns_spill_dir_) {
    fs::remove_all(spill_dir_, ec);
    return;
  }
  // User-provided directory: remove only the files we created. Locked:
  // a racing reader (e.g. a straggling speculative task) must not see
  // blocks_ mid-teardown.
  MutexLock lock(&mu_);
  for (auto& [node, parts] : blocks_) {
    for (auto& [p, b] : parts) {
      if (b.on_disk) fs::remove(b.path, ec);
    }
  }
}

BlockManager::Block* BlockManager::Find(const BlockId& id) {
  auto nit = blocks_.find(id.node);
  if (nit == blocks_.end()) return nullptr;
  auto pit = nit->second.find(id.partition);
  return pit == nit->second.end() ? nullptr : &pit->second;
}

const BlockManager::Block* BlockManager::Find(const BlockId& id) const {
  auto nit = blocks_.find(id.node);
  if (nit == blocks_.end()) return nullptr;
  auto pit = nit->second.find(id.partition);
  return pit == nit->second.end() ? nullptr : &pit->second;
}

std::string BlockManager::PathFor(const BlockId& id) {
  if (!spill_dir_ready_) {
    std::error_code ec;
    fs::create_directories(spill_dir_, ec);
    SPANGLE_CHECK(!ec) << "cannot create spill dir " << spill_dir_ << ": "
                       << ec.message();
    spill_dir_ready_ = true;
  }
  return spill_dir_ + "/block_" + std::to_string(id.node) + "_" +
         std::to_string(id.partition) + ".spill";
}

void BlockManager::UpdateGauges() {
  metrics_->bytes_cached.store(bytes_in_memory_);
  metrics_->bytes_mapped.store(bytes_mapped_);
  if (bytes_in_memory_ > metrics_->memory_high_water.load()) {
    metrics_->memory_high_water.store(bytes_in_memory_);
  }
}

void BlockManager::InsertResident(const BlockId& id, Block& b, DataPtr data) {
  b.data = std::move(data);
  b.lost = false;
  b.lru_it = lru_.insert(lru_.end(), id);
  // Only the owned portion counts against the budget; file-backed or
  // shared bytes are tracked in the separate mapped gauge.
  const uint64_t unowned = std::min(b.unowned_bytes, b.bytes);
  bytes_in_memory_ += b.bytes - unowned;
  bytes_mapped_ += unowned;
  UpdateGauges();
}

void BlockManager::ReleaseMemory(Block& b) {
  if (b.data == nullptr) return;
  lru_.erase(b.lru_it);
  const uint64_t unowned = std::min(b.unowned_bytes, b.bytes);
  bytes_in_memory_ -= b.bytes - unowned;
  bytes_mapped_ -= unowned;
  b.unowned_bytes = 0;
  b.data = nullptr;
  UpdateGauges();
}

void BlockManager::SpillBlock(const BlockId& id, Block& b) {
  if (b.on_disk) return;
  b.path = PathFor(id);
  const uint64_t written = b.spill(b.data.get(), b.path);
  b.on_disk = true;
  metrics_->spilled_bytes.fetch_add(written);
}

void BlockManager::RemoveFile(Block& b) {
  if (!b.on_disk) return;
  std::error_code ec;
  fs::remove(b.path, ec);
  b.on_disk = false;
  b.path.clear();
}

void BlockManager::EvictBlock(const BlockId& id, Block& b) {
  if (b.level == StorageLevel::kMemoryAndDisk && b.spill != nullptr) {
    // blocking-ok: spill-before-evict under mu_ is the documented eviction
    // design — the budget must not be released before the bytes are safe.
    SpillBlock(id, b);
  }
  if (!b.on_disk) b.lost = true;
  ReleaseMemory(b);
  metrics_->evictions.fetch_add(1);
}

void BlockManager::EvictToFit(uint64_t incoming, const BlockId& protect) {
  if (budget_ == 0) return;
  auto it = lru_.begin();
  while (bytes_in_memory_ + incoming > budget_ && it != lru_.end()) {
    const BlockId victim = *it;
    ++it;
    if (victim == protect) continue;
    Block* vb = Find(victim);
    SPANGLE_CHECK(vb != nullptr && vb->data != nullptr)
        << "LRU entry without a resident block";
    // A block that can neither spill nor be recomputed (unspillable
    // shuffle output) is pinned: losing it would be unrecoverable
    // mid-action.
    if (!vb->recomputable && vb->spill == nullptr) continue;
    // A fully unowned payload (mmap readback / dedup-shared) charges
    // nothing against the budget, so evicting it frees nothing.
    if (vb->unowned_bytes >= vb->bytes) continue;
    // blocking-ok: eviction may spill to disk; designed blocking (above).
    EvictBlock(victim, *vb);
  }
}

void BlockManager::Put(const BlockId& id, DataPtr data, uint64_t bytes,
                       StorageLevel level, SpillFn spill, LoadFn load,
                       bool recomputable, uint64_t content_hash) {
  MutexLock lock(&mu_);
  // blocking-ok: admission may evict-and-spill; designed blocking.
  PutLocked(id, std::move(data), bytes, level, std::move(spill),
            std::move(load), recomputable, content_hash, /*unowned_bytes=*/0);
}

bool BlockManager::PutIfAbsent(const BlockId& id, DataPtr data, uint64_t bytes,
                               StorageLevel level, SpillFn spill, LoadFn load,
                               bool recomputable, uint64_t content_hash) {
  MutexLock lock(&mu_);
  const Block* existing = Find(id);
  if (existing != nullptr &&
      (existing->data != nullptr || existing->on_disk)) {
    // A usable payload is already committed: keep it. When both commits
    // carry the same content address this is a counted dedup — the
    // speculation-loser / retried-task / raced-job case.
    if (content_hash != 0 && existing->content_hash == content_hash) {
      metrics_->shuffle_block_dedup_hits.fetch_add(1);
    }
    return false;
  }
  if (content_hash != 0) {
    // Content-addressed commit: identical bytes may already be stored
    // under a different id (an identically re-planned stage). Share that
    // payload instead of storing a second copy; the new id's bytes are
    // accounted as unowned.
    auto cit = content_index_.find(content_hash);
    if (cit != content_index_.end() && !(cit->second == id)) {
      Block* src = Find(cit->second);
      if (src != nullptr && src->data != nullptr &&
          src->content_hash == content_hash) {
        metrics_->shuffle_block_dedup_hits.fetch_add(1);
        // blocking-ok: admission may evict-and-spill; designed blocking.
        PutLocked(id, src->data, bytes, level, std::move(spill),
                  std::move(load), recomputable, content_hash,
                  /*unowned_bytes=*/bytes);
        return false;  // the caller's copy was discarded
      }
      content_index_.erase(cit);  // stale: block gone or rewritten
    }
  }
  // blocking-ok: admission may evict-and-spill; designed blocking.
  PutLocked(id, std::move(data), bytes, level, std::move(spill),
            std::move(load), recomputable, content_hash, /*unowned_bytes=*/0);
  return true;
}

void BlockManager::PutLocked(const BlockId& id, DataPtr data, uint64_t bytes,
                             StorageLevel level, SpillFn spill, LoadFn load,
                             bool recomputable, uint64_t content_hash,
                             uint64_t unowned_bytes) {
  Block& b = blocks_[id.node][id.partition];
  ReleaseMemory(b);  // replacing: drop the old payload's accounting
  RemoveFile(b);     // a stale spill file no longer matches the payload
  b.bytes = bytes;
  b.unowned_bytes = unowned_bytes;
  b.content_hash = content_hash;
  b.level = level;
  b.recomputable = recomputable;
  b.spill = std::move(spill);
  b.load = std::move(load);
  b.lost = false;
  if (content_hash != 0) content_index_[content_hash] = id;
  if (level == StorageLevel::kDiskOnly && b.spill != nullptr) {
    b.path = PathFor(id);
    const uint64_t written = b.spill(data.get(), b.path);
    b.on_disk = true;
    metrics_->spilled_bytes.fetch_add(written);
    return;  // never resident
  }
  // blocking-ok: eviction may spill to disk; designed blocking.
  EvictToFit(bytes - std::min(unowned_bytes, bytes), id);
  InsertResident(id, b, std::move(data));
}

BlockManager::GetResult BlockManager::Get(const BlockId& id) {
  MutexLock lock(&mu_);
  Block* b = Find(id);
  if (b == nullptr) return {};
  if (b->data != nullptr) {
    // LRU touch: move to the most-recently-used end.
    lru_.splice(lru_.end(), lru_, b->lru_it);
    return {b->data, false};
  }
  if (b->on_disk && b->load != nullptr) {
    Loaded loaded = b->load(b->path);
    metrics_->disk_reads.fetch_add(1);
    if (b->level != StorageLevel::kDiskOnly) {
      // Re-admit: only the owned portion of the payload competes for
      // budget (mmap-backed bytes stay with the file).
      b->unowned_bytes = std::min(loaded.mapped_bytes, b->bytes);
      // blocking-ok: re-admission may evict-and-spill; designed blocking.
      EvictToFit(b->bytes - b->unowned_bytes, id);
      InsertResident(id, *b, loaded.data);
    }
    return {std::move(loaded.data), false};
  }
  return {nullptr, b->lost};
}

bool BlockManager::Contains(const BlockId& id) const {
  MutexLock lock(&mu_);
  const Block* b = Find(id);
  return b != nullptr && (b->data != nullptr || b->on_disk);
}

uint64_t BlockManager::ContentHashOf(const BlockId& id) const {
  MutexLock lock(&mu_);
  const Block* b = Find(id);
  if (b == nullptr || (b->data == nullptr && !b->on_disk)) return 0;
  return b->content_hash;
}

bool BlockManager::ContainsAll(uint64_t node, int num_partitions) const {
  MutexLock lock(&mu_);
  auto nit = blocks_.find(node);
  if (nit == blocks_.end()) return num_partitions == 0;
  for (int p = 0; p < num_partitions; ++p) {
    auto pit = nit->second.find(p);
    if (pit == nit->second.end()) return false;
    const Block& b = pit->second;
    if (b.data == nullptr && !b.on_disk) return false;
  }
  return true;
}

void BlockManager::DropBlockLocked(const BlockId& id, Block& b) {
  ReleaseMemory(b);
  RemoveFile(b);
  if (b.recomputable) {
    b.lost = true;  // remembered so the recompute is counted
  } else {
    // Shuffle output: erase entirely; the owning node re-materializes
    // when ContainsAll turns false.
    auto nit = blocks_.find(id.node);
    nit->second.erase(id.partition);
    if (nit->second.empty()) blocks_.erase(nit);
  }
}

void BlockManager::DropBlock(const BlockId& id) {
  MutexLock lock(&mu_);
  Block* b = Find(id);
  if (b == nullptr) return;
  DropBlockLocked(id, *b);
}

void BlockManager::DropNode(uint64_t node) {
  MutexLock lock(&mu_);
  auto nit = blocks_.find(node);
  if (nit == blocks_.end()) return;
  for (auto& [p, b] : nit->second) {
    ReleaseMemory(b);
    RemoveFile(b);
  }
  blocks_.erase(nit);
}

void BlockManager::FailExecutor(int worker) {
  MutexLock lock(&mu_);
  std::vector<BlockId> victims;
  for (auto& [node, parts] : blocks_) {
    for (auto& [p, b] : parts) {
      if (p % num_workers_ == worker) victims.push_back({node, p});
    }
  }
  for (const BlockId& id : victims) {
    Block* b = Find(id);
    if (b != nullptr) DropBlockLocked(id, *b);
  }
}

uint64_t BlockManager::bytes_in_memory() const {
  MutexLock lock(&mu_);
  return bytes_in_memory_;
}

uint64_t BlockManager::bytes_mapped() const {
  MutexLock lock(&mu_);
  return bytes_mapped_;
}

size_t BlockManager::num_resident_blocks() const {
  MutexLock lock(&mu_);
  return lru_.size();
}

}  // namespace spangle
