#ifndef SPANGLE_ENGINE_EXECUTOR_POOL_H_
#define SPANGLE_ENGINE_EXECUTOR_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace spangle {

/// Where and when one task ran. Times are microseconds relative to the
/// pool's construction, so timings from different stages of one context
/// share an epoch and can be laid out on a common trace timeline.
struct TaskTiming {
  int index = 0;        // task index within its batch
  int lane = 0;         // executor lane that ran it (see RunAll)
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
};

/// Fixed pool of worker threads standing in for the cluster's executors.
/// A driver thread submits one batch of tasks per stage with RunAll(),
/// which blocks until every task of that batch has finished — mirroring
/// Spark's stage barrier.
///
/// Multiple driver threads may call RunAll() concurrently (the DAG
/// scheduler materializes independent shuffle stages in parallel): each
/// call is an independent batch, workers drain tasks from every active
/// batch, and each caller returns when its own batch completes. What is
/// NOT allowed is calling RunAll() from *inside a task* — that would nest
/// a stage barrier inside a task and, before the guard, deadlocked
/// silently; it now CHECK-fails with the offending lane.
class ExecutorPool {
 public:
  /// Observer invoked once per task, after the task body returns, from
  /// the thread that ran it. May be called concurrently; implementations
  /// must be thread-safe (writing to distinct per-index slots is enough).
  using TaskObserver = std::function<void(const TaskTiming&)>;

  explicit ExecutorPool(int num_workers);
  ~ExecutorPool();

  ExecutorPool(const ExecutorPool&) = delete;
  ExecutorPool& operator=(const ExecutorPool&) = delete;

  int num_workers() const { return num_workers_; }

  /// Runs all tasks across the pool; the calling thread participates, so a
  /// pool of size 1 degenerates to serial in-line execution. Lanes number
  /// the threads that can run tasks: pool workers take 0..num_workers-2,
  /// the first driver thread num_workers-1, and additional concurrent
  /// drivers (scheduler threads) count up from there.
  void RunAll(std::vector<std::function<void()>> tasks,
              const TaskObserver& observer = nullptr);

  /// Microseconds since pool construction (the trace epoch).
  uint64_t NowMicros() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

 private:
  struct Batch {
    std::vector<std::function<void()>> tasks;
    TaskObserver observer;
    size_t next = 0;     // next task index to hand out
    size_t pending = 0;  // tasks taken but unfinished + tasks not taken
  };

  void WorkerLoop(int lane);
  /// Picks one runnable task — from `only` when given, else from any
  /// active batch — runs it, and returns true. False when nothing to run.
  bool RunOneTask(Batch* only);
  bool AnyRunnableLocked() const;
  int LaneForThisThread();

  const int num_workers_;
  const std::chrono::steady_clock::time_point epoch_;
  std::vector<std::thread> workers_;
  std::atomic<int> next_driver_lane_;

  mutable std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  std::deque<std::shared_ptr<Batch>> active_;
  bool shutdown_ = false;
};

}  // namespace spangle

#endif  // SPANGLE_ENGINE_EXECUTOR_POOL_H_
