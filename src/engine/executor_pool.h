#ifndef SPANGLE_ENGINE_EXECUTOR_POOL_H_
#define SPANGLE_ENGINE_EXECUTOR_POOL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace spangle {

/// Where and when one task attempt ran. Times are microseconds relative
/// to the pool's construction, so timings from different stages of one
/// context share an epoch and can be laid out on a common trace timeline.
struct TaskTiming {
  int index = 0;        // task index within its batch
  int attempt = 0;      // 0 = original launch, 1 = speculative copy
  int lane = 0;         // executor lane that ran it (see RunAll)
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
};

/// Fixed pool of worker threads standing in for the cluster's executors.
/// A driver thread submits one batch of tasks per stage with RunAll(),
/// which blocks until every launched attempt of that batch has finished —
/// mirroring Spark's stage barrier.
///
/// Failure contract: a task body that throws does NOT poison the batch or
/// the pool. The exception is captured per task, unrelated tasks keep
/// running, and RunAll reports one TaskResult per task (Status plus the
/// captured exception_ptr) so the scheduler can retry or re-plan. The
/// legacy void()-task overload rethrows the first captured error on the
/// calling thread after the batch barrier.
///
/// Speculation: when enabled, the calling (driver) thread monitors its
/// batch while waiting on the barrier and re-enqueues a second attempt of
/// any task that has been running far longer than the median of the
/// batch's completed tasks. Both attempts invoke the same callable (which
/// receives its attempt number); the first to return settles the task and
/// the barrier still waits for the loser to come back, so no attempt ever
/// outlives RunAll.
///
/// Multiple driver threads may call RunAll() concurrently (the DAG
/// scheduler materializes independent shuffle stages in parallel, and the
/// JobServer's dispatchers interleave stages of different jobs): each
/// call is an independent batch, workers drain tasks from every active
/// batch, and each caller returns when its own batch completes. RunAll()
/// from *inside a task* is also legal: all batch state is per-batch, and
/// a nested caller always drains its own batch inline (it never waits for
/// a lane — every lane may be busy with the batches that got it here), so
/// the nested barrier cannot deadlock. This used to CHECK-fail under the
/// one-batch-in-flight assumption. Nested *stages* (Context::RunStage
/// from inside a task) remain banned by the lock-rank detector: task
/// gates share a rank and same-rank acquisitions never nest.
class ExecutorPool {
 public:
  /// One task: invoked as task(attempt). May be invoked more than once
  /// (speculation), possibly concurrently with itself; implementations
  /// that are not naturally idempotent must gate their side effects (the
  /// scheduler's task wrappers do).
  using Task = std::function<void(int attempt)>;

  /// Observer invoked once per task *attempt*, after the attempt returns,
  /// from the thread that ran it. May be called concurrently;
  /// implementations must be thread-safe.
  using TaskObserver = std::function<void(const TaskTiming&)>;

  /// Straggler re-launch policy for one batch (see FaultToleranceOptions
  /// for the context-level defaults these are filled from).
  struct SpeculationOptions {
    bool enabled = false;
    double multiplier = 1.5;
    uint64_t min_runtime_us = 2000;
    double min_completed_fraction = 0.5;
    uint64_t check_interval_us = 200;
  };

  /// Outcome of one task across all its attempts.
  struct TaskResult {
    Status status;             // OK when any attempt returned normally
    std::exception_ptr error;  // captured exception when !status.ok()
    int attempts = 0;          // attempts launched (2 when speculated)
  };

  /// Outcome of one batch.
  struct BatchResult {
    std::vector<TaskResult> tasks;
    int speculative_launches = 0;

    bool ok() const {
      for (const auto& t : tasks) {
        if (!t.status.ok()) return false;
      }
      return true;
    }
  };

  explicit ExecutorPool(int num_workers);
  ~ExecutorPool();

  ExecutorPool(const ExecutorPool&) = delete;
  ExecutorPool& operator=(const ExecutorPool&) = delete;

  int num_workers() const { return num_workers_; }

  /// Runs all tasks across the pool; the calling thread participates, so a
  /// pool of size 1 degenerates to serial in-line execution. Lanes number
  /// the threads that can run tasks: pool workers take 0..num_workers-2,
  /// the first driver thread num_workers-1, and additional concurrent
  /// drivers (scheduler threads) count up from there. Returns one
  /// TaskResult per task; never throws on task failure.
  BatchResult RunAll(std::vector<Task> tasks,
                     const TaskObserver& observer,
                     const SpeculationOptions& speculation);
  BatchResult RunAll(std::vector<Task> tasks,
                     const TaskObserver& observer = nullptr) {
    return RunAll(std::move(tasks), observer, SpeculationOptions{});
  }

  /// Legacy attempt-less batch: wraps each task, then rethrows the first
  /// captured task error (if any) after the whole batch has finished.
  void RunAll(std::vector<std::function<void()>> tasks,
              const TaskObserver& observer = nullptr);

  /// Microseconds since pool construction (the trace epoch).
  uint64_t NowMicros() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

 private:
  struct WorkItem {
    int index = 0;
    int attempt = 0;
  };

  /// Per-task bookkeeping across attempts. Guarded by the owning pool's
  /// mu_, reached only through Batch::slot(i) (REQUIRES(mu) +
  /// runtime AssertHeld); the analysis cannot re-state the capability on
  /// fields of an element type, so Slot itself stays unannotated — see
  /// Batch::slot for the full capability story.
  struct Slot {
    int launched = 0;             // attempts queued so far (1 or 2)
    int returned = 0;             // attempts that came back
    uint64_t first_start_us = 0;  // 0 = no attempt has started yet
    uint64_t first_duration_us = 0;  // duration of first returned attempt
    bool speculated = false;
    bool succeeded = false;  // some attempt returned normally
    Status status;
    std::exception_ptr error;
  };

  struct Batch {
    explicit Batch(Mutex* pool_mu) : mu(pool_mu) {}

    /// The owning pool's mu_ — gives the analysis a name for "this
    /// batch's guarded state". Scopes that hold the pool lock re-state
    /// it per batch with mu->AssertHeld() (the analysis cannot infer
    /// that batch->mu aliases the pool's mu_ on its own).
    Mutex* const mu;

    // Written once before the batch is published to active_, immutable
    // afterward: task bodies and observers run with mu_ released, so
    // these two must NOT be guarded.
    std::vector<Task> tasks;  // invoked by index; callable repeatedly
    TaskObserver observer;

    std::deque<WorkItem> queue GUARDED_BY(mu);  // attempts not picked up
    std::vector<Slot> slots GUARDED_BY(mu);
    size_t outstanding GUARDED_BY(mu) = 0;  // queued + running attempts
    int speculative_launches GUARDED_BY(mu) = 0;

    /// The only sanctioned way to reach a Slot. GUARDED_BY attaches a
    /// capability to a *member*; the Slots inside `slots` are elements
    /// of a member, one indirection past where the analysis stops — it
    /// checks access to the vector, then loses track of the references
    /// handed out, so Slot fields cannot carry the annotation at all.
    /// This accessor closes the gap: REQUIRES(mu) makes every caller
    /// prove it holds the pool lock at compile time, and AssertHeld()
    /// re-checks at runtime (under SPANGLE_LOCK_RANK_CHECKS), catching
    /// a reference that escaped a locked scope and was dereferenced
    /// after unlock — exactly the bug class the static analysis cannot
    /// see here.
    Slot& slot(size_t i) REQUIRES(mu) {
      mu->AssertHeld();
      return slots[i];
    }
  };

  void WorkerLoop(int lane) EXCLUDES(mu_);
  /// Picks one runnable attempt — from `only` when given, else from any
  /// active batch — runs it, and returns true. False when nothing to run.
  /// With `speculative_only`, considers only re-launched copies (attempt
  /// > 0): the speculating driver must not occupy its lane with a
  /// primary attempt that could itself be the straggler.
  bool RunOneTask(Batch* only, bool speculative_only = false) EXCLUDES(mu_);
  bool AnyRunnableLocked() const REQUIRES(mu_);
  int LaneForThisThread();
  /// Re-enqueues a speculative copy of every straggler in `b`; returns
  /// true when at least one was launched.
  bool MaybeSpeculateLocked(Batch& b, const SpeculationOptions& spec)
      REQUIRES(mu_);

  const int num_workers_;
  const std::chrono::steady_clock::time_point epoch_;
  std::vector<std::thread> workers_;
  std::atomic<int> next_driver_lane_;

  // Rank kExecutorPool: task bodies run with mu_ RELEASED, so the lock
  // is never held across user code or other engine locks. Batch state is
  // annotated through Batch::mu (a pointer to this mu_): each locked
  // scope asserts the alias with batch->mu->AssertHeld(), which is also
  // a runtime check under SPANGLE_LOCK_RANK_CHECKS. Slot fields cannot
  // carry the capability (element type of a guarded vector), so every
  // Slot access goes through Batch::slot(i), which demands the lock
  // statically (REQUIRES) and asserts it at runtime; the TSan suites
  // (storage | scheduler | chaos | net | codec) cover what remains.
  mutable Mutex mu_{LockRank::kExecutorPool, "ExecutorPool::mu_"};
  CondVar work_ready_;
  CondVar batch_done_;
  std::deque<std::shared_ptr<Batch>> active_ GUARDED_BY(mu_);
  bool shutdown_ GUARDED_BY(mu_) = false;
};

}  // namespace spangle

#endif  // SPANGLE_ENGINE_EXECUTOR_POOL_H_
