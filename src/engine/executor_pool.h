#ifndef SPANGLE_ENGINE_EXECUTOR_POOL_H_
#define SPANGLE_ENGINE_EXECUTOR_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace spangle {

/// Fixed pool of worker threads standing in for the cluster's executors.
/// The driver submits one batch of tasks per stage with RunAll(), which
/// blocks until every task has finished — mirroring Spark's stage barrier.
/// RunAll must only be called from the driver thread (never from inside a
/// task); stages are strictly sequential, tasks within a stage parallel.
class ExecutorPool {
 public:
  explicit ExecutorPool(int num_workers);
  ~ExecutorPool();

  ExecutorPool(const ExecutorPool&) = delete;
  ExecutorPool& operator=(const ExecutorPool&) = delete;

  int num_workers() const { return num_workers_; }

  /// Runs all tasks across the pool; the calling thread participates, so a
  /// pool of size 1 degenerates to serial in-line execution.
  void RunAll(std::vector<std::function<void()>> tasks);

 private:
  void WorkerLoop();
  // Pops and runs tasks from the current batch until it is drained.
  void DrainCurrentBatch();

  const int num_workers_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  std::vector<std::function<void()>> batch_;
  size_t next_task_ = 0;
  size_t pending_ = 0;  // tasks taken but not finished + tasks not taken
  uint64_t batch_id_ = 0;
  bool shutdown_ = false;
};

}  // namespace spangle

#endif  // SPANGLE_ENGINE_EXECUTOR_POOL_H_
