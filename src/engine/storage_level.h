#ifndef SPANGLE_ENGINE_STORAGE_LEVEL_H_
#define SPANGLE_ENGINE_STORAGE_LEVEL_H_

namespace spangle {

/// Spark-style persistence levels for cached partitions (blocks).
///
///  * kNone          — not persisted; every access recomputes from lineage.
///  * kMemoryOnly    — kept on-heap; under memory pressure the block is
///                     dropped and the next access recomputes it.
///  * kMemoryAndDisk — kept on-heap; under memory pressure the block is
///                     spilled to a local file (length-prefixed records,
///                     the disk_persist.h format) and read back on demand.
///  * kDiskOnly      — written straight to disk and never held in memory;
///                     every access streams the file back.
///
/// Levels that require disk need a spillable record type (see
/// spill_codec.h); otherwise they degrade to kMemoryOnly with a warning.
enum class StorageLevel {
  kNone = 0,
  kMemoryOnly,
  kMemoryAndDisk,
  kDiskOnly,
};

inline const char* ToString(StorageLevel level) {
  switch (level) {
    case StorageLevel::kNone:
      return "NONE";
    case StorageLevel::kMemoryOnly:
      return "MEMORY_ONLY";
    case StorageLevel::kMemoryAndDisk:
      return "MEMORY_AND_DISK";
    case StorageLevel::kDiskOnly:
      return "DISK_ONLY";
  }
  return "UNKNOWN";
}

}  // namespace spangle

#endif  // SPANGLE_ENGINE_STORAGE_LEVEL_H_
