#ifndef SPANGLE_ENGINE_ENGINE_H_
#define SPANGLE_ENGINE_ENGINE_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <tuple>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "codec/columnar.h"
#include "common/logging.h"
#include "common/mutex.h"
#include "common/random.h"
#include "common/thread_annotations.h"
#include "engine/block_manager.h"
#include "engine/executor_pool.h"
#include "engine/fault.h"
#include "engine/metrics.h"
#include "engine/partitioner.h"
#include "engine/runtime_profile.h"
#include "engine/scheduler.h"
#include "engine/size_estimator.h"
#include "engine/spill_codec.h"
#include "engine/storage_level.h"
#include "engine/trace.h"
#include "net/deployment.h"
#include "net/remote_shuffle.h"

namespace spangle {

template <typename T>
class Rdd;
template <typename K, typename V>
class PairRdd;

namespace internal {
class NodeBase;
}  // namespace internal

/// The driver-side entry point, standing in for SparkContext: owns the
/// executor pool (simulated cluster workers), the block store, and the
/// DAG scheduler. Every action submits a *job*: the scheduler reifies the
/// lineage DAG into a staged physical plan (stages cut at shuffle
/// boundaries, deduped by node id), materializes independent shuffle
/// stages concurrently, then runs the action's result stage. Every stage
/// is instrumented (wall time, task-time histogram, skew, shuffle bytes)
/// into EngineMetrics::StageStats, exportable with DumpTrace().
class Context {
 public:
  /// `num_workers` simulated executors (threads); `default_parallelism`
  /// partitions per RDD unless overridden (defaults to 2x workers).
  /// `task_overhead_us` adds a fixed cost to every task, modeling the
  /// real cluster's per-task scheduling latency (Spark pays ~ms per
  /// task, which is why tiny chunks lose in the paper's Fig. 8).
  /// `storage` configures the block store (memory budget, spill dir).
  /// `deploy` selects LOCAL (default, single-process — every pre-net test
  /// and bench runs unchanged) or DISTRIBUTED, which spawns
  /// spangle_executord daemons and moves the shuffle data plane onto
  /// them. The Context must outlive every Rdd created from it.
  explicit Context(int num_workers = 4, int default_parallelism = 0,
                   int task_overhead_us = 0, StorageOptions storage = {},
                   DeploymentOptions deploy = {});
  ~Context();

  int num_workers() const { return pool_.num_workers(); }
  int default_parallelism() const { return default_parallelism_; }
  EngineMetrics& metrics() { return metrics_; }
  BlockManager& block_manager() { return block_manager_; }

  /// Per-node executed actuals (rows, bytes, self time, chunk modes),
  /// populated by worker threads while profiling is enabled. The store
  /// behind ExplainAnalyze and the trace counter tracks.
  RuntimeProfile& profile() { return profile_; }

  /// Profiling is on by default; the hooks cost a few relaxed atomics
  /// per *partition* (not per record), so the overhead is small — see
  /// bench_ablation's observability ablation. Turning it off unbinds the
  /// thread-local profile, reducing every hook to one branch.
  void set_profiling_enabled(bool enabled) {
    profiling_.store(enabled, std::memory_order_relaxed);
  }
  bool profiling_enabled() const {
    return profiling_.load(std::memory_order_relaxed);
  }

  /// Distributed tracing (on by default; see DESIGN.md §14). When on,
  /// RunJob/RunStage bind (trace_id, span_id) contexts on their threads,
  /// fleet RPCs stamp trace headers onto requests, and daemons record
  /// serve-side spans that DumpTrace merges back into one timeline.
  /// Turning it off reduces every stamp to one atomic load; daemon-side
  /// recording follows the trace_id==0 header automatically.
  void set_tracing_enabled(bool enabled) { trace_spans_.set_enabled(enabled); }
  bool tracing_enabled() const { return trace_spans_.enabled(); }
  /// The driver-side span ring (client RPC spans + job/stage roots).
  SpanRecorder& trace_spans() { return trace_spans_; }

  /// Fault injection: drops every cached/spilled block resident on
  /// `worker`, as if that executor process died. Cached partitions
  /// recompute from lineage on next access; lost shuffle outputs
  /// re-materialize before the next action. In DISTRIBUTED mode this
  /// additionally SIGKILLs the daemon owning worker % num_executors — a
  /// real process death, not a simulation.
  void FailExecutor(int worker);

  /// True when this context runs against executor daemons.
  bool distributed() const { return fleet_ != nullptr; }
  /// The daemon fleet (null in LOCAL mode).
  net::ExecutorFleet* fleet() { return fleet_.get(); }
  /// The remote shuffle data plane (null in LOCAL mode).
  net::RemoteShuffleFetcher* remote_shuffle() const {
    return remote_shuffle_.get();
  }

  /// Distributes `data` over `num_partitions` partitions (round-robin
  /// blocks, preserving order). The RDD analogue of sc.parallelize.
  template <typename T>
  Rdd<T> Parallelize(std::vector<T> data, int num_partitions = 0);

  /// Creates a pair RDD whose records are already placed by `partitioner`,
  /// i.e. born co-partitioned (no shuffle).
  template <typename K, typename V>
  PairRdd<K, V> ParallelizePairs(
      std::vector<std::pair<K, V>> data,
      std::shared_ptr<Partitioner<K>> partitioner);

  /// Runs fn(0..n-1) as one stage across the pool. One task per index.
  /// The named overload labels the stage's StageStat record; the unnamed
  /// one records under "stage". Thread-safe: concurrent stages from
  /// different driver threads interleave over the shared workers.
  ///
  /// Fault tolerance: a task attempt that throws is retried up to
  /// `FaultToleranceOptions::max_task_retries` times with exponential
  /// backoff; stragglers are speculatively re-launched when speculation is
  /// on (first finisher wins, the loser never re-runs the task body). A
  /// task that throws ShuffleBlockLostError is NOT retried — the stage
  /// aborts with that error so the job can re-run the upstream stage from
  /// lineage. Retries and job re-attempts may invoke fn more than once
  /// for the same index; fn must be deterministic per index (all engine
  /// call sites write per-index slots, which is enough).
  void RunStage(int n, const std::function<void(int)>& fn);
  void RunStage(const std::string& name, int n,
                const std::function<void(int)>& fn);
  /// `stage_attempt` labels re-executions of the same logical stage
  /// (shuffle re-materializations, job re-attempts) in StageStat/traces
  /// and is exposed to ChaosPolicy predicates.
  void RunStage(const std::string& name, int n,
                const std::function<void(int)>& fn, int stage_attempt);

  /// Submits one job for `action` over `root`: plans the lineage DAG,
  /// materializes every pending shuffle stage (independent stages
  /// concurrently), then runs fn(0..n-1) as the instrumented result stage.
  /// Survives mid-job failures: when a task discovers its shuffle input
  /// blocks were dropped (executor death), the job re-plans — stages
  /// whose output survived are skipped, lost ones re-materialize from
  /// lineage — and re-runs, up to FaultToleranceOptions::max_job_attempts
  /// times before throwing JobFailedError.
  void RunJob(internal::NodeBase* root, const std::string& action, int n,
              const std::function<void(int)>& fn);

  /// Retry/speculation knobs; read at the start of every stage and job.
  void set_fault_options(const FaultToleranceOptions& opts) {
    MutexLock lock(&fault_mu_);
    fault_options_ = opts;
  }
  FaultToleranceOptions fault_options() const {
    MutexLock lock(&fault_mu_);
    return fault_options_;
  }

  /// Installs (or clears, with nullptr) the deterministic fault-injection
  /// hooks consulted before every task attempt. Testing only.
  void set_chaos_policy(std::shared_ptr<const ChaosPolicy> policy) {
    MutexLock lock(&fault_mu_);
    chaos_ = std::move(policy);
  }
  std::shared_ptr<const ChaosPolicy> chaos_policy() const {
    MutexLock lock(&fault_mu_);
    return chaos_;
  }

  /// Builds (without executing) the staged physical plan for an action on
  /// `root` / `roots` — the structure behind Rdd::Explain().
  PhysicalPlan BuildPlan(internal::NodeBase* root,
                         const std::string& action = "collect");
  PhysicalPlan BuildPlan(const std::vector<internal::NodeBase*>& roots,
                         const std::string& action);

  /// Materializes every un-materialized shuffle dependency above the
  /// given root(s), dependencies first. Since the DAG-scheduler refactor
  /// this plans the whole sub-DAG and overlaps independent shuffle
  /// stages; the multi-root overload schedules several lineages as one
  /// job (e.g. all attributes of a SpangleArray).
  void EnsureShuffleDependencies(internal::NodeBase* node);
  void EnsureShuffleDependencies(
      const std::vector<internal::NodeBase*>& roots);

  /// Writes every retained StageStat as Chrome trace_event JSON; open the
  /// file in chrome://tracing (or https://ui.perfetto.dev) to see stage
  /// spans and per-task lanes. Returns false when the file cannot be
  /// written.
  bool DumpTrace(const std::string& path) const;

  /// Machine-readable snapshot of every registered metric (see
  /// metrics_export.h for the schema); Dump* variants write to `path`
  /// and return false when the file cannot be written.
  std::string MetricsJson() const;
  bool DumpMetricsJson(const std::string& path) const;
  /// Prometheus text exposition of the same registry ("spangle_" prefix).
  std::string MetricsPrometheus() const;
  bool DumpMetricsPrometheus(const std::string& path) const;

  /// Ablation switch: when set, the scheduler materializes shuffle stages
  /// strictly one at a time in topological order (the pre-scheduler
  /// behavior). Benches use this to measure what stage overlap buys.
  void set_serial_shuffle_materialization(bool serial) {
    serial_shuffles_.store(serial, std::memory_order_relaxed);
  }
  bool serial_shuffle_materialization() const {
    return serial_shuffles_.load(std::memory_order_relaxed);
  }

  Scheduler& scheduler() { return scheduler_; }

  uint64_t NextNodeId() { return next_node_id_.fetch_add(1); }

  /// Mints a fresh job id (same sequence RunJob draws from). The
  /// JobServer binds one id per served job with internal::ScopedJobId so
  /// every StageStat a job produces carries the same tenant-attributable
  /// id; RunJob reuses an ambient id instead of minting its own.
  uint64_t NextJobId() { return next_job_id_.fetch_add(1) + 1; }

  /// Microseconds since context creation — the trace/timing epoch.
  uint64_t NowMicros() const { return pool_.NowMicros(); }

 private:
  ExecutorPool pool_;
  EngineMetrics metrics_;
  BlockManager block_manager_;  // after metrics_: holds a pointer to it
  RuntimeProfile profile_{&metrics_};  // after metrics_ likewise
  Scheduler scheduler_{this};
  // Driver-side span ring; before fleet_, which holds a pointer to it.
  SpanRecorder trace_spans_;
  // DISTRIBUTED mode only (null otherwise); after metrics_, which both
  // reference. The dtor shuts the fleet down before the members above go.
  std::unique_ptr<net::ExecutorFleet> fleet_;
  std::unique_ptr<net::RemoteShuffleFetcher> remote_shuffle_;
  int default_parallelism_;
  int task_overhead_us_;
  std::atomic<uint64_t> next_node_id_{0};
  std::atomic<uint64_t> next_job_id_{0};
  std::atomic<uint64_t> next_stage_seq_{0};
  std::atomic<bool> serial_shuffles_{false};
  std::atomic<bool> profiling_{true};

  // Rank kConfig: snapshot-style accessors only; nothing is acquired
  // while it is held.
  mutable Mutex fault_mu_{LockRank::kConfig, "Context::fault_mu_"};
  FaultToleranceOptions fault_options_ GUARDED_BY(fault_mu_);
  std::shared_ptr<const ChaosPolicy> chaos_ GUARDED_BY(fault_mu_);
};

namespace internal {

/// Encodes one partition into a chunk frame and credits the codec
/// counters: raw (record-format) vs encoded bytes, and encode time.
/// Every engine encode — shuffle materialization in both modes and
/// cache spills — funnels through here so the compression ratio the
/// metrics report covers all codec traffic.
template <typename T>
codec::EncodedFrame EncodePartitionTimed(EngineMetrics& metrics,
                                         const std::vector<T>& records) {
  const auto start = std::chrono::steady_clock::now();
  codec::EncodedFrame frame = codec::EncodePartitionFrame(records);
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  metrics.codec_encode_time_us.fetch_add(static_cast<uint64_t>(us),
                                         std::memory_order_relaxed);
  metrics.codec_bytes_raw.fetch_add(frame.raw_bytes,
                                    std::memory_order_relaxed);
  metrics.codec_bytes_encoded.fetch_add(frame.bytes.size(),
                                        std::memory_order_relaxed);
  return frame;
}

/// Untyped lineage-DAG vertex: partition count + parents + shuffle hooks.
class NodeBase {
 public:
  NodeBase(Context* ctx, std::string name)
      : ctx_(ctx), id_(ctx->NextNodeId()), name_(std::move(name)) {}
  virtual ~NodeBase() = default;

  NodeBase(const NodeBase&) = delete;
  NodeBase& operator=(const NodeBase&) = delete;

  virtual int num_partitions() const = 0;
  virtual std::vector<NodeBase*> Parents() const = 0;
  virtual bool IsShuffle() const { return false; }
  virtual bool IsMaterialized() const { return true; }
  /// Computes + stores shuffle output; only meaningful for shuffle nodes.
  virtual void Materialize() {}

  Context* ctx() const { return ctx_; }
  uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }

  /// Content seed for LineageDigest (below). 0 — the default — marks the
  /// node content-opaque: C++ closures cannot be hashed, so a plan only
  /// participates in digest-keyed result caching when the caller has
  /// *declared* its content by seeding every source node (and salting any
  /// operator whose lambda differs between structurally identical plans).
  uint64_t digest_seed() const {
    return digest_seed_.load(std::memory_order_relaxed);
  }
  void set_digest_seed(uint64_t seed) {
    digest_seed_.store(seed, std::memory_order_relaxed);
  }

 private:
  Context* ctx_;
  uint64_t id_;
  std::string name_;
  std::atomic<uint64_t> digest_seed_{0};
};

/// Structural content digest of the lineage DAG rooted at `node`: a
/// chained XXH64 over each node's operator name, partition count,
/// shuffle-ness, digest seed, and its parents' digests (postorder, so
/// the root digest commits to the whole DAG). Returns 0 — "not
/// cacheable" — unless every *source* (parentless) node carries a
/// nonzero digest seed: without declared source identity, two plans
/// with identical shape but different data or lambdas would collide.
/// Equal digests are the serving layer's cache key (see JobServer);
/// unequal digests never alias. Deterministic across processes for the
/// same plan shape and seeds (node ids do not participate).
uint64_t LineageDigest(const NodeBase* node);

/// Typed node: computes one partition at a time. Persistence goes through
/// the context's BlockManager: cached partitions are accounted, LRU
/// evicted under the memory budget, optionally spilled to disk, and
/// recomputed from lineage (parents) when lost.
template <typename T>
class Node : public NodeBase {
 public:
  using PartitionPtr = std::shared_ptr<const std::vector<T>>;

  using NodeBase::NodeBase;

  ~Node() override { ctx()->block_manager().DropNode(id()); }

  /// Partition contents; serves from the block store when persistence is
  /// enabled, otherwise recomputes from parents (lineage). The
  /// OperatorScope attributes rows/bytes/self-time to this node's
  /// RuntimeProfile entry when the calling thread is profiling.
  PartitionPtr GetPartition(int i) {
    prof::OperatorScope op(id());
    const StorageLevel level =
        storage_level_.load(std::memory_order_acquire);
    bool was_lost = false;
    if (level != StorageLevel::kNone) {
      auto r = ctx()->block_manager().Get({id(), i});
      if (r.data != nullptr) {
        ctx()->metrics().cache_hits.fetch_add(1);
        auto part = std::static_pointer_cast<const std::vector<T>>(r.data);
        if (op.active()) op.FinishCached(part->size());
        return part;
      }
      ctx()->metrics().cache_misses.fetch_add(1);
      was_lost = r.was_lost;
    }
    auto computed =
        std::make_shared<const std::vector<T>>(ComputePartition(i));
    if (op.active()) {
      op.FinishComputed(computed->size(), EstimateSize(*computed));
    }
    if (level != StorageLevel::kNone) {
      if (was_lost) ctx()->metrics().recomputed_partitions.fetch_add(1);
      StoreBlock(i, computed, level, /*recomputable=*/true);
    }
    return computed;
  }

  /// Marks this node's partitions for persistence (rdd.persist(level)).
  /// Disk-backed levels need a spillable record type; otherwise they
  /// degrade to MEMORY_ONLY (lineage recompute) with a warning.
  void EnableCache(StorageLevel level = StorageLevel::kMemoryOnly) {
    if (level == StorageLevel::kNone) level = StorageLevel::kMemoryOnly;
    if constexpr (!spill::kSpillable<T>) {
      if (level != StorageLevel::kMemoryOnly) {
        SPANGLE_LOG(Warning)
            << "storage level " << ToString(level) << " on node '" << name()
            << "' needs a spillable record type; using MEMORY_ONLY";
        level = StorageLevel::kMemoryOnly;
      }
    }
    storage_level_.store(level, std::memory_order_release);
  }

  bool cache_enabled() const {
    return storage_level_.load(std::memory_order_acquire) !=
           StorageLevel::kNone;
  }
  StorageLevel storage_level() const {
    return storage_level_.load(std::memory_order_acquire);
  }

 protected:
  virtual std::vector<T> ComputePartition(int i) = 0;

  /// Hands one partition to the BlockManager. `recomputable` is false
  /// for shuffle outputs, whose loss is repaired by re-materializing
  /// the whole shuffle rather than per-partition lineage recompute.
  /// Put-if-absent: when duplicate computations of one partition race
  /// (speculative attempts, task retries, partial shuffle reruns), the
  /// first committed payload wins and the loser is discarded — the
  /// commit is idempotent, so duplicated work never changes state.
  /// `content_hash` is the partition's chunk-frame content address when
  /// the caller already encoded it (shuffle outputs); 0 leaves the block
  /// unhashed, outside the dedup index.
  void StoreBlock(int i, PartitionPtr data, StorageLevel level,
                  bool recomputable, uint64_t content_hash = 0) {
    const uint64_t bytes = EstimateSize(*data);
    ctx()->block_manager().PutIfAbsent({id(), i}, std::move(data), bytes,
                                       level, MakeSpillFn(), MakeLoadFn(),
                                       recomputable, content_hash);
  }

  /// Spills encode through the chunk-frame codec (same bytes a shuffle
  /// block has on the wire) and credit the codec counters; non-static so
  /// the closure can reach this context's metrics.
  BlockManager::SpillFn MakeSpillFn() {
    if constexpr (spill::kSpillable<T>) {
      EngineMetrics* metrics = &ctx()->metrics();
      return [metrics](const void* data, const std::string& path) -> uint64_t {
        const codec::EncodedFrame frame = EncodePartitionTimed(
            *metrics, *static_cast<const std::vector<T>*>(data));
        auto written = codec::WriteWholeFile(frame.bytes, path);
        SPANGLE_CHECK(written.ok())
            << "spill write failed: " << written.status().ToString();
        return *written;
      };
    } else {
      return nullptr;
    }
  }

  static BlockManager::LoadFn MakeLoadFn() {
    if constexpr (spill::kSpillable<T>) {
      return [](const std::string& path) -> BlockManager::DataPtr {
        // Decodes straight out of a transient mmap of the frame file
        // (ReadPartitionFile) into owned vectors, so the re-admitted
        // payload has no mapped bytes.
        return std::make_shared<const std::vector<T>>(
            spill::ReadPartitionFile<T>(path));
      };
    } else {
      return nullptr;
    }
  }

 private:
  std::atomic<StorageLevel> storage_level_{StorageLevel::kNone};
};

/// Source node: data distributed at construction time.
template <typename T>
class SourceNode final : public Node<T> {
 public:
  SourceNode(Context* ctx, std::vector<std::vector<T>> partitions)
      : Node<T>(ctx, "source"), partitions_(std::move(partitions)) {}

  int num_partitions() const override {
    return static_cast<int>(partitions_.size());
  }
  std::vector<NodeBase*> Parents() const override { return {}; }

 protected:
  std::vector<T> ComputePartition(int i) override { return partitions_[i]; }

 private:
  std::vector<std::vector<T>> partitions_;
};

/// Narrow one-to-one transformation over whole partitions; map/filter/
/// flatMap are thin wrappers around this.
template <typename Out, typename In>
class MapPartitionsNode final : public Node<Out> {
 public:
  using Fn = std::function<std::vector<Out>(int, const std::vector<In>&)>;

  MapPartitionsNode(Context* ctx, std::shared_ptr<Node<In>> parent, Fn fn,
                    std::string name)
      : Node<Out>(ctx, std::move(name)),
        parent_(std::move(parent)),
        fn_(std::move(fn)) {}

  int num_partitions() const override { return parent_->num_partitions(); }
  std::vector<NodeBase*> Parents() const override { return {parent_.get()}; }

 protected:
  std::vector<Out> ComputePartition(int i) override {
    auto in = parent_->GetPartition(i);
    return fn_(i, *in);
  }

 private:
  std::shared_ptr<Node<In>> parent_;
  Fn fn_;
};

/// Narrow two-parent transformation over aligned partitions (both parents
/// must have equal partition counts). Powers the shuffle-free local join.
template <typename Out, typename A, typename B>
class ZipPartitionsNode final : public Node<Out> {
 public:
  using Fn = std::function<std::vector<Out>(int, const std::vector<A>&,
                                            const std::vector<B>&)>;

  ZipPartitionsNode(Context* ctx, std::shared_ptr<Node<A>> left,
                    std::shared_ptr<Node<B>> right, Fn fn, std::string name)
      : Node<Out>(ctx, std::move(name)),
        left_(std::move(left)),
        right_(std::move(right)),
        fn_(std::move(fn)) {
    SPANGLE_CHECK_EQ(left_->num_partitions(), right_->num_partitions());
  }

  int num_partitions() const override { return left_->num_partitions(); }
  std::vector<NodeBase*> Parents() const override {
    return {left_.get(), right_.get()};
  }

 protected:
  std::vector<Out> ComputePartition(int i) override {
    auto a = left_->GetPartition(i);
    auto b = right_->GetPartition(i);
    return fn_(i, *a, *b);
  }

 private:
  std::shared_ptr<Node<A>> left_;
  std::shared_ptr<Node<B>> right_;
  Fn fn_;
};

/// Narrow partition-count reduction: output partition i concatenates a
/// contiguous range of parent partitions (Spark's coalesce without
/// shuffle).
template <typename T>
class CoalesceNode final : public Node<T> {
 public:
  CoalesceNode(Context* ctx, std::shared_ptr<Node<T>> parent, int target)
      : Node<T>(ctx, "coalesce"),
        parent_(std::move(parent)),
        target_(std::min(target, parent_->num_partitions())) {
    SPANGLE_CHECK_GE(target, 1);
  }

  int num_partitions() const override { return target_; }
  std::vector<NodeBase*> Parents() const override { return {parent_.get()}; }

 protected:
  std::vector<T> ComputePartition(int i) override {
    const int n = parent_->num_partitions();
    const int begin = n * i / target_;
    const int end = n * (i + 1) / target_;
    std::vector<T> out;
    for (int p = begin; p < end; ++p) {
      auto part = parent_->GetPartition(p);
      out.insert(out.end(), part->begin(), part->end());
    }
    return out;
  }

 private:
  std::shared_ptr<Node<T>> parent_;
  int target_;
};

/// Concatenation of two RDDs' partition lists (narrow).
template <typename T>
class UnionNode final : public Node<T> {
 public:
  UnionNode(Context* ctx, std::shared_ptr<Node<T>> left,
            std::shared_ptr<Node<T>> right)
      : Node<T>(ctx, "union"), left_(std::move(left)), right_(std::move(right)) {}

  int num_partitions() const override {
    return left_->num_partitions() + right_->num_partitions();
  }
  std::vector<NodeBase*> Parents() const override {
    return {left_.get(), right_.get()};
  }

 protected:
  std::vector<T> ComputePartition(int i) override {
    const int nl = left_->num_partitions();
    auto p = (i < nl) ? left_->GetPartition(i)
                      : right_->GetPartition(i - nl);
    return *p;
  }

 private:
  std::shared_ptr<Node<T>> left_;
  std::shared_ptr<Node<T>> right_;
};

/// Wide dependency: repartitions key-value records by `partitioner`, with
/// optional map-side + reduce-side combining (reduceByKey). Materialize()
/// runs the map side as one parallel stage, buckets records, and accounts
/// every moved byte in EngineMetrics — the quantity the paper's
/// optimizations (local join, metadata transpose, MaskRDD) all attack.
template <typename K, typename V>
class ShuffleNode final : public Node<std::pair<K, V>> {
 public:
  using Record = std::pair<K, V>;
  using Combiner = std::function<V(const V&, const V&)>;

  ShuffleNode(Context* ctx, std::shared_ptr<Node<Record>> parent,
              std::shared_ptr<Partitioner<K>> partitioner, Combiner combiner,
              std::string name)
      : Node<Record>(ctx, std::move(name)),
        parent_(std::move(parent)),
        partitioner_(std::move(partitioner)),
        combiner_(std::move(combiner)) {}

  int num_partitions() const override {
    return partitioner_->num_partitions();
  }
  std::vector<NodeBase*> Parents() const override { return {parent_.get()}; }
  bool IsShuffle() const override { return true; }

  /// Materialized = every output block is still available (in memory or
  /// spilled; on its owner daemon in DISTRIBUTED mode). Executor failures
  /// make this false again, which re-runs the shuffle before the next
  /// action (Spark's stage retry).
  bool IsMaterialized() const override {
    {
      MutexLock lock(&mu_);
      if (!materialized_) return false;
    }
    if constexpr (spill::kSpillable<Record>) {
      if (this->ctx()->distributed()) {
        return this->ctx()->remote_shuffle()->ContainsAll(this->id(),
                                                          num_partitions());
      }
    }
    return this->ctx()->block_manager().ContainsAll(this->id(),
                                                    num_partitions());
  }

  void Materialize() override {
    if (IsMaterialized()) return;
    Context* ctx = this->ctx();
    // Count lifetime materializations: attempt > 0 means this stage's
    // output was lost (executor failure / eviction) and lineage is
    // re-running it — Spark's stage rerun.
    int attempt;
    {
      MutexLock lock(&mu_);
      attempt = materialize_attempts_++;
    }
    if (attempt > 0) ctx->metrics().stage_reruns.fetch_add(1);
    const int n_map = parent_->num_partitions();
    const int n_out = partitioner_->num_partitions();
    // Map side: one task per input partition produces n_out buckets.
    std::vector<std::vector<std::vector<Record>>> map_outputs(n_map);
    ctx->RunStage(this->name() + "/map", n_map, [&](int m) {
      auto in = parent_->GetPartition(m);
      std::vector<Record> records;
      if (combiner_) {
        // Map-side combine, as Spark does for reduceByKey.
        std::unordered_map<K, V> acc;
        for (const auto& [k, v] : *in) {
          auto it = acc.find(k);
          if (it == acc.end()) {
            acc.emplace(k, v);
          } else {
            it->second = combiner_(it->second, v);
          }
        }
        records.reserve(acc.size());
        for (auto& [k, v] : acc) records.emplace_back(k, std::move(v));
      } else {
        records = *in;
      }
      auto& buckets = map_outputs[m];
      buckets.resize(n_out);
      uint64_t bytes = 0;
      for (auto& rec : records) {
        bytes += EstimateSize(rec);
        buckets[partitioner_->PartitionFor(rec.first)].push_back(
            std::move(rec));
      }
      ctx->metrics().AddShuffleRecords(records.size());
      ctx->metrics().AddShuffleBytes(bytes);
    }, attempt);
    // Reduce side: merge buckets (and combine when requested).
    std::vector<std::vector<Record>> output(n_out);
    ctx->RunStage(this->name() + "/reduce", n_out, [&](int r) {
      if (combiner_) {
        std::unordered_map<K, V> acc;
        for (int m = 0; m < n_map; ++m) {
          for (auto& [k, v] : map_outputs[m][r]) {
            auto it = acc.find(k);
            if (it == acc.end()) {
              acc.emplace(k, std::move(v));
            } else {
              it->second = combiner_(it->second, v);
            }
          }
        }
        auto& out = output[r];
        out.reserve(acc.size());
        for (auto& [k, v] : acc) out.emplace_back(k, std::move(v));
      } else {
        auto& out = output[r];
        for (int m = 0; m < n_map; ++m) {
          for (auto& rec : map_outputs[m][r]) out.push_back(std::move(rec));
        }
      }
    }, attempt);
    ctx->metrics().shuffles.fetch_add(1);
    if constexpr (spill::kSpillable<Record>) {
      if (ctx->distributed()) {
        // DISTRIBUTED data plane: each output partition becomes one
        // chunk frame shipped verbatim to its owner daemon; nothing
        // stays in the driver. The frame's content hash travels with it
        // (daemon-side dedup + receipt validation). A double store
        // failure (owner down AND its restarted replacement failing)
        // means the fleet is broken, not a block loss — lineage cannot
        // route around a fleet with no daemons.
        for (int r = 0; r < n_out; ++r) {
          codec::EncodedFrame frame =
              EncodePartitionTimed(ctx->metrics(), output[r]);
          const Status st = ctx->remote_shuffle()->StoreEncoded(
              this->id(), r, std::move(frame.bytes), frame.content_hash);
          SPANGLE_CHECK(st.ok())
              << "shuffle store to executor fleet failed: " << st.ToString();
        }
        MutexLock lock(&mu_);
        materialized_ = true;
        return;
      }
      // LOCAL: output blocks live in the block store like any cached
      // partition — accounted against the budget, spillable to disk.
      // Each partition is encoded once to compute its content address,
      // so a later re-materialization (partial stage rerun, identically
      // re-planned stage) commits as a counted dedup hit instead of a
      // second copy.
      for (int r = 0; r < n_out; ++r) {
        const codec::EncodedFrame frame =
            EncodePartitionTimed(ctx->metrics(), output[r]);
        this->StoreBlock(r,
                         std::make_shared<const std::vector<Record>>(
                             std::move(output[r])),
                         StorageLevel::kMemoryAndDisk,
                         /*recomputable=*/false, frame.content_hash);
      }
    } else {
      // Unspillable record type: pinned in memory (cannot spill, cannot
      // be recomputed partition-by-partition mid-action) and unhashed
      // (no byte codec to address the content with).
      for (int r = 0; r < n_out; ++r) {
        this->StoreBlock(r,
                         std::make_shared<const std::vector<Record>>(
                             std::move(output[r])),
                         StorageLevel::kMemoryOnly, /*recomputable=*/false);
      }
    }
    MutexLock lock(&mu_);
    materialized_ = true;
  }

 protected:
  std::vector<Record> ComputePartition(int i) override {
    if constexpr (spill::kSpillable<Record>) {
      if (this->ctx()->distributed()) {
        auto bytes = this->ctx()->remote_shuffle()->FetchEncoded(this->id(), i);
        if (!bytes.has_value()) {
          // The owner daemon died (or restarted empty) after this job was
          // planned — or the fetched frame failed content-hash validation
          // (wire corruption). Same recovery as a local fetch failure
          // below.
          throw ShuffleBlockLostError({this->id()});
        }
        auto records = codec::DecodePartitionFrame<Record>(bytes->data(),
                                                           bytes->size());
        if (!records.ok()) {
          // A structurally corrupt frame that still hash-validated can
          // only come from a damaged daemon store; treat it as a lost
          // block so lineage re-materializes instead of crashing.
          throw ShuffleBlockLostError({this->id()});
        }
        return *std::move(records);
      }
    }
    auto r = this->ctx()->block_manager().Get({this->id(), i});
    if (r.data == nullptr) {
      // Fetch failure: this shuffle's output was dropped after the job
      // was planned (executor death mid-job). Not task-retryable — the
      // running job must re-materialize this stage from lineage first.
      throw ShuffleBlockLostError({this->id()});
    }
    return *std::static_pointer_cast<const std::vector<Record>>(r.data);
  }

 private:
  std::shared_ptr<Node<Record>> parent_;
  std::shared_ptr<Partitioner<K>> partitioner_;
  Combiner combiner_;

  // Rank kShuffleNode: released before ContainsAll / RunStage, so no
  // other engine lock is ever taken while it is held.
  mutable Mutex mu_{LockRank::kShuffleNode, "ShuffleNode::mu_"};
  bool materialized_ GUARDED_BY(mu_) = false;
  int materialize_attempts_ GUARDED_BY(mu_) = 0;
};

}  // namespace internal

/// Handle to a distributed collection of T (the RDD abstraction).
/// Transformations are lazy: they extend the lineage DAG; only actions
/// (Collect/Count/Fold/...) trigger execution.
template <typename T>
class Rdd {
 public:
  using PartitionPtr = typename internal::Node<T>::PartitionPtr;

  Rdd() = default;
  explicit Rdd(std::shared_ptr<internal::Node<T>> node)
      : node_(std::move(node)) {}

  internal::Node<T>* node() const { return node_.get(); }
  std::shared_ptr<internal::Node<T>> node_ptr() const { return node_; }
  Context* ctx() const { return node_->ctx(); }
  int num_partitions() const { return node_->num_partitions(); }

  /// Element-wise transformation.
  template <typename Fn, typename Out = std::invoke_result_t<Fn, const T&>>
  Rdd<Out> Map(Fn fn) const {
    return MapPartitionsWithIndex<Out>(
        [fn = std::move(fn)](int, const std::vector<T>& in) {
          std::vector<Out> out;
          out.reserve(in.size());
          for (const auto& v : in) out.push_back(fn(v));
          return out;
        },
        "map");
  }

  /// Keeps elements satisfying `pred`.
  template <typename Pred>
  Rdd<T> Filter(Pred pred) const {
    return MapPartitionsWithIndex<T>(
        [pred = std::move(pred)](int, const std::vector<T>& in) {
          std::vector<T> out;
          for (const auto& v : in) {
            if (pred(v)) out.push_back(v);
          }
          return out;
        },
        "filter");
  }

  /// Element-to-many transformation.
  template <typename Fn,
            typename OutVec = std::invoke_result_t<Fn, const T&>,
            typename Out = typename OutVec::value_type>
  Rdd<Out> FlatMap(Fn fn) const {
    return MapPartitionsWithIndex<Out>(
        [fn = std::move(fn)](int, const std::vector<T>& in) {
          std::vector<Out> out;
          for (const auto& v : in) {
            for (auto& o : fn(v)) out.push_back(std::move(o));
          }
          return out;
        },
        "flatMap");
  }

  /// Whole-partition transformation; fn(partition_index, records).
  template <typename Out>
  Rdd<Out> MapPartitionsWithIndex(
      std::function<std::vector<Out>(int, const std::vector<T>&)> fn,
      std::string name = "mapPartitions") const {
    return Rdd<Out>(std::make_shared<internal::MapPartitionsNode<Out, T>>(
        ctx(), node_, std::move(fn), std::move(name)));
  }

  /// Aligned two-RDD partition-wise transformation (narrow; both sides
  /// must have equal partition counts).
  template <typename Out, typename B>
  Rdd<Out> ZipPartitions(
      const Rdd<B>& other,
      std::function<std::vector<Out>(int, const std::vector<T>&,
                                     const std::vector<B>&)>
          fn,
      std::string name = "zipPartitions") const {
    return Rdd<Out>(std::make_shared<internal::ZipPartitionsNode<Out, T, B>>(
        ctx(), node_, other.node_ptr(), std::move(fn), std::move(name)));
  }

  /// Concatenates two RDDs (narrow).
  Rdd<T> Union(const Rdd<T>& other) const {
    return Rdd<T>(std::make_shared<internal::UnionNode<T>>(ctx(), node_,
                                                           other.node_ptr()));
  }

  /// Reduces the partition count without a shuffle: each output
  /// partition concatenates a contiguous range of inputs.
  Rdd<T> Coalesce(int num_partitions) const {
    return Rdd<T>(std::make_shared<internal::CoalesceNode<T>>(
        ctx(), node_, num_partitions));
  }

  /// Bernoulli sample: keeps each record with probability `fraction`.
  /// Deterministic for a given (seed, partitioning). The per-partition
  /// stream is seeded with MixSeeds(seed, partition) — both inputs pass
  /// through SplitMix64, so distinct (seed, partition) pairs cannot
  /// collide by simple arithmetic (the old affine seed*K+idx scheme let
  /// different pairs land on the same generator state).
  Rdd<T> Sample(double fraction, uint64_t seed) const {
    return MapPartitionsWithIndex<T>(
        [fraction, seed](int idx, const std::vector<T>& in) {
          Rng rng(MixSeeds(seed, static_cast<uint64_t>(idx)));
          std::vector<T> out;
          for (const auto& v : in) {
            if (rng.NextBool(fraction)) out.push_back(v);
          }
          return out;
        },
        "sample");
  }

  /// Unique records (one shuffle). Requires std::hash<T> and ==.
  Rdd<T> Distinct() const {
    auto keyed = Map([](const T& v) { return std::pair<T, char>(v, 0); });
    auto p = std::make_shared<HashPartitioner<T>>(num_partitions());
    auto deduped = std::make_shared<internal::ShuffleNode<T, char>>(
        ctx(), keyed.node_ptr(), p,
        [](const char& a, const char&) { return a; }, "distinct");
    return Rdd<std::pair<T, char>>(deduped).template Map(
        [](const std::pair<T, char>& kv) { return kv.first; });
  }

  /// Marks this RDD's partitions for persistence (rdd.persist(level)):
  /// MEMORY_ONLY recomputes evicted partitions from lineage,
  /// MEMORY_AND_DISK spills them to disk and reads them back, DISK_ONLY
  /// streams every access from disk.
  Rdd<T>& Cache(StorageLevel level = StorageLevel::kMemoryOnly) {
    node_->EnableCache(level);
    return *this;
  }

  /// Declares this node's content identity for the lineage-digest result
  /// cache (JobServer): seed every source RDD (and salt any operator
  /// whose lambda differs between structurally identical plans) and
  /// identical sub-plans submitted by different sessions share one
  /// cached result. See internal::LineageDigest for the contract.
  Rdd<T>& WithDigestSeed(uint64_t seed) {
    node_->set_digest_seed(seed);
    return *this;
  }

  /// This plan's digest (0 = not cacheable; some source is unseeded).
  uint64_t LineageDigest() const {
    return internal::LineageDigest(node_.get());
  }

  // ---- Introspection ----

  /// Human-readable staged physical plan for running `action` on this
  /// RDD: stages cut at shuffle boundaries, dependency edges, and how
  /// many independent shuffle stages could overlap. Does not execute.
  std::string Explain(const std::string& action = "collect") const {
    return ctx()->BuildPlan(node_.get(), action).ToString();
  }

  /// EXECUTES `action` and returns the static plan annotated with this
  /// run's actuals: per-node rows/bytes/self-time, cache hits, and the
  /// chunk-mode / density / mode-transition stats the array layer
  /// reported (Spark SQL's "explain analyze"). Scoped to this run via
  /// snapshot diffs, so shared or cached lineage reports only what this
  /// query executed.
  AnalyzedPlan ExplainAnalyzePlan(
      const std::string& action = "collect") const {
    ProfiledRun run(ctx(), {node_.get()}, action);
    CollectPartitionPtrs(action);
    return run.Finish();
  }
  std::string ExplainAnalyze(const std::string& action = "collect") const {
    return ExplainAnalyzePlan(action).ToString();
  }

  // ---- Actions (trigger execution) ----

  /// All records, concatenated in partition order.
  std::vector<T> Collect() const {
    auto parts = CollectPartitionPtrs("collect");
    size_t total = 0;
    for (const auto& p : parts) total += p->size();
    std::vector<T> out;
    out.reserve(total);
    for (const auto& p : parts) out.insert(out.end(), p->begin(), p->end());
    return out;
  }

  /// Per-partition contents as shared pointers — no copy for cached (or
  /// freshly computed) partitions; the blocks stay alive as long as the
  /// returned pointers do. Prefer this over CollectPartitions when the
  /// caller only reads.
  std::vector<PartitionPtr> CollectPartitionPtrs(
      const std::string& action = "collectPartitions") const {
    const int n = num_partitions();
    std::vector<PartitionPtr> parts(n);
    ctx()->RunJob(node_.get(), action, n,
                  [&](int i) { parts[i] = node_->GetPartition(i); });
    return parts;
  }

  /// Per-partition record vectors (copying; kept for callers that mutate).
  std::vector<std::vector<T>> CollectPartitions() const {
    auto ptrs = CollectPartitionPtrs();
    std::vector<std::vector<T>> parts(ptrs.size());
    for (size_t i = 0; i < ptrs.size(); ++i) parts[i] = *ptrs[i];
    return parts;
  }

  /// Number of records.
  size_t Count() const {
    auto parts = CollectPartitionPtrs("count");
    size_t total = 0;
    for (const auto& p : parts) total += p->size();
    return total;
  }

  /// Parallel reduce with an associative, commutative `fn`; `identity`
  /// must be fn's neutral element. Returns `identity` on an empty RDD.
  template <typename Fn>
  T Reduce(T identity, Fn fn) const {
    return Aggregate<T>(std::move(identity), fn, fn);
  }

  /// Parallel fold with distinct element-combine and accumulator-merge.
  template <typename Acc, typename SeqFn, typename MergeFn>
  Acc Aggregate(Acc init, SeqFn seq, MergeFn merge) const {
    const int n = num_partitions();
    std::vector<Acc> accs(n, init);
    ctx()->RunJob(node_.get(), "aggregate", n, [&](int i) {
      auto part = node_->GetPartition(i);
      Acc acc = init;
      for (const auto& v : *part) acc = seq(std::move(acc), v);
      accs[i] = std::move(acc);
    });
    Acc total = init;
    for (auto& a : accs) total = merge(std::move(total), std::move(a));
    return total;
  }

  /// Runs `fn(partition_index, records)` once per partition, in parallel.
  void ForEachPartition(
      const std::function<void(int, const std::vector<T>&)>& fn) const {
    ctx()->RunJob(node_.get(), "forEachPartition", num_partitions(),
                  [&](int i) { fn(i, *node_->GetPartition(i)); });
  }

 private:
  std::shared_ptr<internal::Node<T>> node_;
};

/// Key-value RDD handle. Carries an optional partitioner: when set, the
/// records are guaranteed to be placed by it, enabling shuffle-free local
/// joins between co-partitioned RDDs (paper Sec. VI-A).
template <typename K, typename V>
class PairRdd {
 public:
  using Record = std::pair<K, V>;

  PairRdd() = default;
  explicit PairRdd(Rdd<Record> rdd,
                   std::shared_ptr<Partitioner<K>> partitioner = nullptr)
      : rdd_(std::move(rdd)), partitioner_(std::move(partitioner)) {}

  const Rdd<Record>& AsRdd() const { return rdd_; }
  Context* ctx() const { return rdd_.ctx(); }
  int num_partitions() const { return rdd_.num_partitions(); }
  const std::shared_ptr<Partitioner<K>>& partitioner() const {
    return partitioner_;
  }

  PairRdd<K, V>& Cache(StorageLevel level = StorageLevel::kMemoryOnly) {
    rdd_.Cache(level);
    return *this;
  }

  /// See Rdd::WithDigestSeed / internal::LineageDigest.
  PairRdd<K, V>& WithDigestSeed(uint64_t seed) {
    rdd_.WithDigestSeed(seed);
    return *this;
  }
  uint64_t LineageDigest() const { return rdd_.LineageDigest(); }

  /// Staged physical plan dump (see Rdd::Explain).
  std::string Explain(const std::string& action = "collect") const {
    return rdd_.Explain(action);
  }

  /// Executed-plan profile (see Rdd::ExplainAnalyze).
  AnalyzedPlan ExplainAnalyzePlan(
      const std::string& action = "collect") const {
    return rdd_.ExplainAnalyzePlan(action);
  }
  std::string ExplainAnalyze(const std::string& action = "collect") const {
    return rdd_.ExplainAnalyze(action);
  }

  /// Value-only transformation; preserves partitioning.
  template <typename Fn, typename W = std::invoke_result_t<Fn, const V&>>
  PairRdd<K, W> MapValues(Fn fn) const {
    auto out = rdd_.template Map(
        [fn = std::move(fn)](const Record& r) {
          return std::pair<K, W>(r.first, fn(r.second));
        });
    return PairRdd<K, W>(std::move(out), partitioner_);
  }

  /// Record-level filter; preserves partitioning.
  template <typename Pred>
  PairRdd<K, V> Filter(Pred pred) const {
    return PairRdd<K, V>(rdd_.Filter(std::move(pred)), partitioner_);
  }

  /// Re-places records by `p` (one shuffle), after which the result is
  /// co-partitioned with anything else partitioned by an equal `p`.
  PairRdd<K, V> PartitionBy(std::shared_ptr<Partitioner<K>> p) const {
    auto node = std::make_shared<internal::ShuffleNode<K, V>>(
        ctx(), rdd_.node_ptr(), p, nullptr, "partitionBy");
    return PairRdd<K, V>(Rdd<Record>(node), p);
  }

  /// Shuffle + combine values per key (map-side combine included).
  PairRdd<K, V> ReduceByKey(std::function<V(const V&, const V&)> fn,
                            std::shared_ptr<Partitioner<K>> p = nullptr) const {
    if (p == nullptr) p = DefaultPartitioner();
    auto node = std::make_shared<internal::ShuffleNode<K, V>>(
        ctx(), rdd_.node_ptr(), p, std::move(fn), "reduceByKey");
    return PairRdd<K, V>(Rdd<Record>(node), p);
  }

  /// Shuffle + gather all values per key.
  PairRdd<K, std::vector<V>> GroupByKey(
      std::shared_ptr<Partitioner<K>> p = nullptr) const {
    if (p == nullptr) p = DefaultPartitioner();
    PairRdd<K, V> placed = PlacedBy(p);
    auto grouped = placed.AsRdd().template MapPartitionsWithIndex<
        std::pair<K, std::vector<V>>>(
        [](int, const std::vector<Record>& in) {
          std::unordered_map<K, std::vector<V>> groups;
          for (const auto& [k, v] : in) groups[k].push_back(v);
          std::vector<std::pair<K, std::vector<V>>> out;
          out.reserve(groups.size());
          for (auto& [k, vs] : groups) out.emplace_back(k, std::move(vs));
          return out;
        },
        "groupByKey");
    return PairRdd<K, std::vector<V>>(std::move(grouped), p);
  }

  /// Inner join. When both sides are co-partitioned by an equal
  /// partitioner this is the *local join*: a narrow per-partition hash
  /// join with zero shuffle (paper Sec. VI-A). Otherwise both sides are
  /// shuffled to a common partitioner first.
  template <typename W>
  PairRdd<K, std::pair<V, W>> Join(const PairRdd<K, W>& other) const {
    auto [left, right, p] = AlignWith(other);
    auto joined = left.AsRdd().template ZipPartitions<
        std::pair<K, std::pair<V, W>>, std::pair<K, W>>(
        right.AsRdd(),
        [](int, const std::vector<Record>& a,
           const std::vector<std::pair<K, W>>& b) {
          std::unordered_multimap<K, const V*> index;
          index.reserve(a.size());
          for (const auto& [k, v] : a) index.emplace(k, &v);
          std::vector<std::pair<K, std::pair<V, W>>> out;
          for (const auto& [k, w] : b) {
            auto range = index.equal_range(k);
            for (auto it = range.first; it != range.second; ++it) {
              out.emplace_back(k, std::pair<V, W>(*it->second, w));
            }
          }
          return out;
        },
        "join");
    return PairRdd<K, std::pair<V, W>>(std::move(joined), p);
  }

  /// Full cogroup: for every key present on either side, the vectors of
  /// values from both sides.
  template <typename W>
  PairRdd<K, std::pair<std::vector<V>, std::vector<W>>> CoGroup(
      const PairRdd<K, W>& other) const {
    auto [left, right, p] = AlignWith(other);
    using Out = std::pair<K, std::pair<std::vector<V>, std::vector<W>>>;
    auto grouped = left.AsRdd().template ZipPartitions<Out, std::pair<K, W>>(
        right.AsRdd(),
        [](int, const std::vector<Record>& a,
           const std::vector<std::pair<K, W>>& b) {
          std::unordered_map<K, std::pair<std::vector<V>, std::vector<W>>> m;
          for (const auto& [k, v] : a) m[k].first.push_back(v);
          for (const auto& [k, w] : b) m[k].second.push_back(w);
          std::vector<Out> out;
          out.reserve(m.size());
          for (auto& [k, vw] : m) out.emplace_back(k, std::move(vw));
          return out;
        },
        "cogroup");
    return PairRdd<K, std::pair<std::vector<V>, std::vector<W>>>(
        std::move(grouped), p);
  }

  /// Values for `key`. With a partitioner set, computes only the one
  /// partition that can hold the key — the trick the SGD sampler uses with
  /// Eq. 2's reversible ids (no shuffle, no full scan).
  std::vector<V> Lookup(const K& key) const {
    ctx()->EnsureShuffleDependencies(rdd_.node());
    std::vector<V> out;
    if (partitioner_ != nullptr) {
      const int p = partitioner_->PartitionFor(key);
      auto part = rdd_.node()->GetPartition(p);
      for (const auto& [k, v] : *part) {
        if (k == key) out.push_back(v);
      }
      ctx()->metrics().tasks_run.fetch_add(1);
      return out;
    }
    for (const auto& [k, v] : rdd_.Collect()) {
      if (k == key) out.push_back(v);
    }
    return out;
  }

  std::vector<Record> Collect() const { return rdd_.Collect(); }
  size_t Count() const { return rdd_.Count(); }

  std::unordered_map<K, V> CollectAsMap() const {
    std::unordered_map<K, V> out;
    for (auto& [k, v] : rdd_.Collect()) out.emplace(std::move(k), std::move(v));
    return out;
  }

  Rdd<K> Keys() const {
    return rdd_.template Map([](const Record& r) { return r.first; });
  }
  Rdd<V> Values() const {
    return rdd_.template Map([](const Record& r) { return r.second; });
  }

 private:
  std::shared_ptr<Partitioner<K>> DefaultPartitioner() const {
    if (partitioner_ != nullptr) return partitioner_;
    return std::make_shared<HashPartitioner<K>>(
        std::max(num_partitions(), 1));
  }

  /// This RDD placed by `p`: a no-op when already co-partitioned.
  PairRdd<K, V> PlacedBy(const std::shared_ptr<Partitioner<K>>& p) const {
    if (partitioner_ != nullptr && partitioner_->Equals(*p)) return *this;
    return PartitionBy(p);
  }

  /// Aligns two pair RDDs onto one partitioner, shuffling only the sides
  /// that are not already co-partitioned.
  template <typename W>
  std::tuple<PairRdd<K, V>, PairRdd<K, W>, std::shared_ptr<Partitioner<K>>>
  AlignWith(const PairRdd<K, W>& other) const {
    std::shared_ptr<Partitioner<K>> p;
    if (partitioner_ != nullptr && other.partitioner() != nullptr &&
        partitioner_->Equals(*other.partitioner())) {
      p = partitioner_;
    } else if (partitioner_ != nullptr) {
      p = partitioner_;
    } else if (other.partitioner() != nullptr) {
      p = other.partitioner();
    } else {
      p = std::make_shared<HashPartitioner<K>>(
          std::max(num_partitions(), other.num_partitions()));
    }
    PairRdd<K, V> left = PlacedBy(p);
    PairRdd<K, W> right = other.PlacedBy2(p);
    return {std::move(left), std::move(right), p};
  }

 public:
  /// Public alias of PlacedBy for use from AlignWith across types.
  PairRdd<K, V> PlacedBy2(const std::shared_ptr<Partitioner<K>>& p) const {
    return PlacedBy(p);
  }

 private:
  Rdd<Record> rdd_;
  std::shared_ptr<Partitioner<K>> partitioner_;
};

/// Wraps an Rdd of pairs into a PairRdd handle (no data movement).
template <typename K, typename V>
PairRdd<K, V> ToPair(Rdd<std::pair<K, V>> rdd,
                     std::shared_ptr<Partitioner<K>> partitioner = nullptr) {
  return PairRdd<K, V>(std::move(rdd), std::move(partitioner));
}

// ---- Context template definitions ----

template <typename T>
Rdd<T> Context::Parallelize(std::vector<T> data, int num_partitions) {
  if (num_partitions <= 0) num_partitions = default_parallelism_;
  const size_t n = data.size();
  std::vector<std::vector<T>> parts(num_partitions);
  for (int p = 0; p < num_partitions; ++p) {
    const size_t begin = n * p / num_partitions;
    const size_t end = n * (p + 1) / num_partitions;
    parts[p].reserve(end - begin);
    for (size_t i = begin; i < end; ++i) parts[p].push_back(std::move(data[i]));
  }
  return Rdd<T>(
      std::make_shared<internal::SourceNode<T>>(this, std::move(parts)));
}

template <typename K, typename V>
PairRdd<K, V> Context::ParallelizePairs(
    std::vector<std::pair<K, V>> data,
    std::shared_ptr<Partitioner<K>> partitioner) {
  const int np = partitioner->num_partitions();
  std::vector<std::vector<std::pair<K, V>>> parts(np);
  for (auto& rec : data) {
    parts[partitioner->PartitionFor(rec.first)].push_back(std::move(rec));
  }
  auto node = std::make_shared<internal::SourceNode<std::pair<K, V>>>(
      this, std::move(parts));
  return PairRdd<K, V>(Rdd<std::pair<K, V>>(node), std::move(partitioner));
}

}  // namespace spangle

#endif  // SPANGLE_ENGINE_ENGINE_H_
