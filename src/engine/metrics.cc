#include "engine/metrics.h"

#include <sstream>

#include "common/bytes.h"

namespace spangle {

void EngineMetrics::Reset() {
  tasks_run = 0;
  stages_run = 0;
  shuffles = 0;
  shuffle_records = 0;
  shuffle_bytes = 0;
  recomputed_partitions = 0;
  cache_hits = 0;
  cache_misses = 0;
  bytes_cached = 0;
  memory_high_water = 0;
  evictions = 0;
  spilled_bytes = 0;
  disk_reads = 0;
}

std::string EngineMetrics::ToString() const {
  std::ostringstream os;
  os << "tasks=" << tasks_run.load() << " stages=" << stages_run.load()
     << " shuffles=" << shuffles.load()
     << " shuffle_records=" << shuffle_records.load()
     << " shuffle_bytes=" << HumanBytes(shuffle_bytes.load())
     << " recomputed=" << recomputed_partitions.load()
     << " cache_hits=" << cache_hits.load()
     << " cache_misses=" << cache_misses.load()
     << " bytes_cached=" << HumanBytes(bytes_cached.load())
     << " memory_high_water=" << HumanBytes(memory_high_water.load())
     << " evictions=" << evictions.load()
     << " spilled_bytes=" << HumanBytes(spilled_bytes.load())
     << " disk_reads=" << disk_reads.load();
  return os.str();
}

}  // namespace spangle
