#include "engine/metrics.h"

#include <algorithm>
#include <sstream>

#include "common/bytes.h"
#include "common/logging.h"

namespace spangle {

namespace {

// The stage accumulator of the task currently running on this thread, if
// any. Bound by Context::RunStage around each task body.
thread_local EngineMetrics::StageAccumulator* tl_stage_acc = nullptr;

// Finite log-scale task-duration bounds (us); the registry histogram gets
// an implicit overflow bucket, unlike StageStat::kHistBoundsUs whose last
// entry is UINT64_MAX.
std::vector<double> TaskDurationBounds() {
  return {10, 100, 1000, 10000, 100000, 1000000, 10000000};
}

}  // namespace

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kTimer:
      return "timer";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

void MetricRegistry::RegisterScalar(MetricKind kind, std::string name,
                                    std::string unit, std::string help,
                                    std::atomic<uint64_t>* value) {
  SPANGLE_CHECK(kind != MetricKind::kHistogram);
  SPANGLE_CHECK(value != nullptr);
  SPANGLE_CHECK(Find(name) == nullptr) << "duplicate metric: " << name;
  MetricDef def;
  def.name = std::move(name);
  def.unit = std::move(unit);
  def.help = std::move(help);
  def.kind = kind;
  def.value = value;
  metrics_.push_back(std::move(def));
}

void MetricRegistry::RegisterHistogram(std::string name, std::string unit,
                                       std::string help,
                                       Histogram* histogram) {
  SPANGLE_CHECK(histogram != nullptr);
  SPANGLE_CHECK(Find(name) == nullptr) << "duplicate metric: " << name;
  MetricDef def;
  def.name = std::move(name);
  def.unit = std::move(unit);
  def.help = std::move(help);
  def.kind = MetricKind::kHistogram;
  def.histogram = histogram;
  metrics_.push_back(std::move(def));
}

const MetricDef* MetricRegistry::Find(const std::string& name) const {
  for (const auto& m : metrics_) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

std::string StageStat::ToString() const {
  std::ostringstream os;
  os << "stage#" << seq << " '" << name << "'";
  if (attempt > 0) os << " attempt=" << attempt;
  os << " job=" << job_id << " tasks=" << num_tasks << " wall=" << wall_us
     << "us task[min/mean/max]=" << min_task_us << "/"
     << (num_tasks > 0 ? total_task_us / num_tasks : 0) << "/" << max_task_us
     << "us skew=" << skew_ratio << " stragglers=" << num_stragglers;
  if (task_retries > 0) os << " task_retries=" << task_retries;
  if (speculative_launches > 0) {
    os << " speculative=" << speculative_launches << "/" << speculative_wins
       << " (launched/won)";
  }
  if (shuffle_bytes > 0) {
    os << " shuffled=" << HumanBytes(shuffle_bytes) << " ("
       << shuffle_records << " records)";
  }
  if (remote_fetch_us > 0) os << " remote_fetch=" << remote_fetch_us << "us";
  return os.str();
}

const std::vector<double>& EngineMetrics::DensityBounds() {
  static const std::vector<double> kBounds = {0.001, 0.01, 0.05, 0.1,
                                              0.25,  0.5,  0.75, 1.0};
  return kBounds;
}

const std::vector<double>& EngineMetrics::RttBoundsUs() {
  static const std::vector<double> kBounds = {
      50, 100, 250, 500, 1000, 2500, 5000, 10000, 50000, 250000};
  return kBounds;
}

double Histogram::PercentileFromCounts(const std::vector<double>& bounds,
                                       const std::vector<uint64_t>& counts,
                                       double q) {
  uint64_t total = 0;
  for (const uint64_t c : counts) total += c;
  if (total == 0 || bounds.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation (1-based, ceil).
  const double rank = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    const uint64_t prev = cumulative;
    cumulative += counts[b];
    if (static_cast<double>(cumulative) < rank) continue;
    // The open overflow bucket has no upper edge; clamp to the last
    // bound (consistent with Prometheus-style le="+Inf" reporting).
    if (b >= bounds.size()) return bounds.back();
    const double lower = b == 0 ? 0.0 : bounds[b - 1];
    const double upper = bounds[b];
    const uint64_t in_bucket = counts[b];
    if (in_bucket == 0) return upper;
    const double frac =
        (rank - static_cast<double>(prev)) / static_cast<double>(in_bucket);
    return lower + (upper - lower) * (frac < 0.0 ? 0.0 : frac);
  }
  return bounds.back();
}

const std::vector<double>& EngineMetrics::LatencyBoundsUs() {
  static const std::vector<double> kBounds = {
      100,    1000,    5000,    10000,    50000,     100000,
      500000, 1000000, 5000000, 10000000, 60000000};
  return kBounds;
}

EngineMetrics::EngineMetrics()
    : task_duration_us(TaskDurationBounds()),
      heartbeat_rtt_us(RttBoundsUs()),
      job_queue_wait_us(LatencyBoundsUs()),
      job_run_us(LatencyBoundsUs()),
      job_e2e_us(LatencyBoundsUs()),
      chunk_density(DensityBounds()),
      mask_density(DensityBounds()) {
  const auto counter = [this](const char* name, const char* unit,
                              const char* help, std::atomic<uint64_t>* v) {
    registry_.RegisterScalar(MetricKind::kCounter, name, unit, help, v);
  };
  const auto gauge = [this](const char* name, const char* unit,
                            const char* help, std::atomic<uint64_t>* v) {
    registry_.RegisterScalar(MetricKind::kGauge, name, unit, help, v);
  };
  counter("jobs_run", "count", "Jobs submitted by actions", &jobs_run);
  counter("tasks_run", "count", "Tasks executed across all stages",
          &tasks_run);
  counter("stages_run", "count", "Stages executed (map/reduce/result)",
          &stages_run);
  counter("shuffles", "count", "Shuffle materializations", &shuffles);
  counter("shuffle_records", "count", "Records moved through shuffles",
          &shuffle_records);
  counter("shuffle_bytes", "bytes", "Bytes moved through shuffles",
          &shuffle_bytes);
  counter("recomputed_partitions", "count",
          "Cached partitions recomputed from lineage after loss",
          &recomputed_partitions);
  counter("cache_hits", "count", "Block store hits", &cache_hits);
  counter("cache_misses", "count", "Block store misses", &cache_misses);
  gauge("concurrent_shuffles", "count",
        "Shuffle stages materializing right now", &concurrent_shuffles);
  gauge("peak_concurrent_shuffles", "count",
        "Most shuffle stages ever materializing at once",
        &peak_concurrent_shuffles);
  counter("task_retries", "count", "Failed task attempts re-launched",
          &task_retries);
  counter("stage_reruns", "count",
          "Shuffle stages re-materialized after output loss", &stage_reruns);
  counter("speculative_launches", "count", "Straggler copies launched",
          &speculative_launches);
  counter("speculative_wins", "count", "Tasks settled by the copy",
          &speculative_wins);
  gauge("bytes_cached", "bytes", "Resident block store bytes",
        &bytes_cached);
  gauge("memory_high_water", "bytes", "Max resident bytes observed",
        &memory_high_water);
  counter("evictions", "count", "Blocks evicted under the memory budget",
          &evictions);
  counter("spilled_bytes", "bytes", "Bytes written to spill files",
          &spilled_bytes);
  counter("disk_reads", "count", "Blocks read back from disk", &disk_reads);
  gauge("bytes_mapped", "bytes",
        "Resident block bytes that are file-backed (mmap), not owned",
        &bytes_mapped);
  counter("shuffle_block_dedup_hits", "count",
          "Shuffle block commits deduplicated by content hash",
          &shuffle_block_dedup_hits);
  counter("codec_bytes_raw", "bytes",
          "Record-format bytes before chunk-frame encoding",
          &codec_bytes_raw);
  counter("codec_bytes_encoded", "bytes",
          "Chunk-frame bytes after encoding", &codec_bytes_encoded);
  registry_.RegisterScalar(MetricKind::kTimer, "codec_encode_time_us", "us",
                           "Time spent encoding partitions into chunk "
                           "frames",
                           &codec_encode_time_us);
  registry_.RegisterScalar(MetricKind::kTimer, "task_time_us", "us",
                           "Accumulated task execution time", &task_time_us);
  registry_.RegisterHistogram("task_duration_us", "us",
                              "Distribution of task durations",
                              &task_duration_us);
  counter("rpc_bytes_sent", "bytes", "Bytes sent over the RPC transport",
          &rpc_bytes_sent);
  counter("rpc_bytes_received", "bytes",
          "Bytes received over the RPC transport", &rpc_bytes_received);
  counter("rpc_roundtrips", "count", "Completed RPC request/response pairs",
          &rpc_roundtrips);
  counter("remote_shuffle_fetches", "count",
          "Shuffle blocks fetched from executor daemons",
          &remote_shuffle_fetches);
  counter("executor_restarts", "count",
          "Executor daemons respawned after a failure", &executor_restarts);
  counter("heartbeat_misses", "count",
          "Heartbeat probes an executor daemon failed to answer",
          &heartbeat_misses);
  registry_.RegisterHistogram("heartbeat_rtt_us", "us",
                              "Heartbeat round-trip time to executor "
                              "daemons (feeds clock-offset estimation)",
                              &heartbeat_rtt_us);
  registry_.RegisterScalar(MetricKind::kTimer, "remote_fetch_time_us", "us",
                           "Time tasks spent waiting on remote shuffle "
                           "fetches",
                           &remote_fetch_time_us);
  counter("jobs_submitted", "count",
          "Jobs accepted by the JobServer across all sessions",
          &jobs_submitted);
  counter("jobs_served", "count",
          "Jobs the JobServer ran to completion (ok or failed)",
          &jobs_served);
  counter("admission_queued", "count",
          "Jobs whose admission was deferred for BlockManager headroom",
          &admission_queued);
  counter("admission_rejected", "count",
          "Jobs rejected because their estimate can never fit the budget",
          &admission_rejected);
  counter("result_cache_hits", "count",
          "Served jobs answered from the lineage-digest result cache",
          &result_cache_hits);
  counter("result_cache_misses", "count",
          "Cacheable jobs that missed the result cache and computed",
          &result_cache_misses);
  counter("result_cache_evictions", "count",
          "Result-cache entries evicted under the cache budget",
          &result_cache_evictions);
  gauge("result_cache_bytes", "bytes",
        "Payload bytes resident in the result cache", &result_cache_bytes);
  registry_.RegisterHistogram("job_queue_wait_us", "us",
                              "Time served jobs sat queued before dispatch",
                              &job_queue_wait_us);
  registry_.RegisterHistogram("job_run_us", "us",
                              "Execution time of served jobs",
                              &job_run_us);
  registry_.RegisterHistogram("job_e2e_us", "us",
                              "Submit-to-done latency of served jobs",
                              &job_e2e_us);
  counter("mode_transitions", "count",
          "Chunk storage-mode conversions (dense/sparse/super-sparse)",
          &mode_transitions);
  registry_.RegisterHistogram(
      "chunk_density", "fraction",
      "Valid-cell fraction of chunks built during execution",
      &chunk_density);
  registry_.RegisterHistogram(
      "mask_density", "fraction",
      "Set-bit fraction of bitmasks produced by MaskRdd combinators",
      &mask_density);
  counter("stage_stats_dropped", "count",
          "Stage records evicted from the retention ring",
          &stage_stats_dropped_);
}

EngineMetrics::ScopedStageAccumulator::ScopedStageAccumulator(
    StageAccumulator* acc)
    : prev_(tl_stage_acc) {
  tl_stage_acc = acc;
}

EngineMetrics::ScopedStageAccumulator::~ScopedStageAccumulator() {
  tl_stage_acc = prev_;
}

void EngineMetrics::AddShuffleBytes(uint64_t bytes) {
  shuffle_bytes.fetch_add(bytes, std::memory_order_relaxed);
  if (tl_stage_acc != nullptr) {
    tl_stage_acc->shuffle_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }
}

void EngineMetrics::AddShuffleRecords(uint64_t n) {
  shuffle_records.fetch_add(n, std::memory_order_relaxed);
  if (tl_stage_acc != nullptr) {
    tl_stage_acc->shuffle_records.fetch_add(n, std::memory_order_relaxed);
  }
}

void EngineMetrics::AddRemoteFetchUs(uint64_t us) {
  remote_fetch_time_us.fetch_add(us, std::memory_order_relaxed);
  if (tl_stage_acc != nullptr) {
    tl_stage_acc->remote_fetch_us.fetch_add(us, std::memory_order_relaxed);
  }
}

void EngineMetrics::RaisePeakConcurrentShuffles(uint64_t v) {
  uint64_t cur = peak_concurrent_shuffles.load(std::memory_order_relaxed);
  while (cur < v && !peak_concurrent_shuffles.compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

void EngineMetrics::RecordStage(StageStat stat) {
  MutexLock lock(&stage_mu_);
  while (stage_stats_.size() >= kMaxStageStats) {
    stage_stats_.pop_front();
    stage_stats_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  stage_stats_.push_back(std::move(stat));
}

std::vector<StageStat> EngineMetrics::StageStats() const {
  MutexLock lock(&stage_mu_);
  return std::vector<StageStat>(stage_stats_.begin(), stage_stats_.end());
}

void EngineMetrics::Reset() {
  // Registry-driven: every registered metric — and only registered
  // metrics — resets, so this cannot drift from the member list.
  for (const MetricDef& m : registry_.metrics()) {
    if (m.kind == MetricKind::kHistogram) {
      m.histogram->Reset();
    } else {
      m.value->store(0, std::memory_order_relaxed);
    }
  }
  MutexLock lock(&stage_mu_);
  stage_stats_.clear();
  stage_stats_dropped_.store(0, std::memory_order_relaxed);
}

std::string EngineMetrics::ToString() const {
  std::ostringstream os;
  bool first = true;
  for (const MetricDef& m : registry_.metrics()) {
    if (!first) os << " ";
    first = false;
    os << m.name << "=";
    if (m.kind == MetricKind::kHistogram) {
      os << "hist(n=" << m.histogram->count() << ")";
    } else if (m.unit == "bytes") {
      os << HumanBytes(m.value->load(std::memory_order_relaxed));
    } else {
      os << m.value->load(std::memory_order_relaxed);
    }
  }
  return os.str();
}

}  // namespace spangle
