#include "engine/metrics.h"

#include <algorithm>
#include <sstream>

#include "common/bytes.h"

namespace spangle {

namespace {

// The stage accumulator of the task currently running on this thread, if
// any. Bound by Context::RunStage around each task body.
thread_local EngineMetrics::StageAccumulator* tl_stage_acc = nullptr;

}  // namespace

std::string StageStat::ToString() const {
  std::ostringstream os;
  os << "stage#" << seq << " '" << name << "'";
  if (attempt > 0) os << " attempt=" << attempt;
  os << " job=" << job_id << " tasks=" << num_tasks << " wall=" << wall_us
     << "us task[min/mean/max]=" << min_task_us << "/"
     << (num_tasks > 0 ? total_task_us / num_tasks : 0) << "/" << max_task_us
     << "us skew=" << skew_ratio << " stragglers=" << num_stragglers;
  if (task_retries > 0) os << " task_retries=" << task_retries;
  if (speculative_launches > 0) {
    os << " speculative=" << speculative_launches << "/" << speculative_wins
       << " (launched/won)";
  }
  if (shuffle_bytes > 0) {
    os << " shuffled=" << HumanBytes(shuffle_bytes) << " ("
       << shuffle_records << " records)";
  }
  return os.str();
}

EngineMetrics::ScopedStageAccumulator::ScopedStageAccumulator(
    StageAccumulator* acc)
    : prev_(tl_stage_acc) {
  tl_stage_acc = acc;
}

EngineMetrics::ScopedStageAccumulator::~ScopedStageAccumulator() {
  tl_stage_acc = prev_;
}

void EngineMetrics::AddShuffleBytes(uint64_t bytes) {
  shuffle_bytes.fetch_add(bytes, std::memory_order_relaxed);
  if (tl_stage_acc != nullptr) {
    tl_stage_acc->shuffle_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }
}

void EngineMetrics::AddShuffleRecords(uint64_t n) {
  shuffle_records.fetch_add(n, std::memory_order_relaxed);
  if (tl_stage_acc != nullptr) {
    tl_stage_acc->shuffle_records.fetch_add(n, std::memory_order_relaxed);
  }
}

void EngineMetrics::RaisePeakConcurrentShuffles(uint64_t v) {
  uint64_t cur = peak_concurrent_shuffles.load(std::memory_order_relaxed);
  while (cur < v && !peak_concurrent_shuffles.compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

void EngineMetrics::RecordStage(StageStat stat) {
  std::lock_guard<std::mutex> lock(stage_mu_);
  if (stage_stats_.size() >= kMaxStageStats) {
    stage_stats_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  stage_stats_.push_back(std::move(stat));
}

std::vector<StageStat> EngineMetrics::StageStats() const {
  std::lock_guard<std::mutex> lock(stage_mu_);
  return stage_stats_;
}

void EngineMetrics::Reset() {
  jobs_run = 0;
  tasks_run = 0;
  stages_run = 0;
  shuffles = 0;
  shuffle_records = 0;
  shuffle_bytes = 0;
  recomputed_partitions = 0;
  cache_hits = 0;
  cache_misses = 0;
  peak_concurrent_shuffles = 0;
  task_retries = 0;
  stage_reruns = 0;
  speculative_launches = 0;
  speculative_wins = 0;
  bytes_cached = 0;
  memory_high_water = 0;
  evictions = 0;
  spilled_bytes = 0;
  disk_reads = 0;
  std::lock_guard<std::mutex> lock(stage_mu_);
  stage_stats_.clear();
  stage_stats_dropped_ = 0;
}

std::string EngineMetrics::ToString() const {
  std::ostringstream os;
  os << "jobs=" << jobs_run.load() << " tasks=" << tasks_run.load()
     << " stages=" << stages_run.load() << " shuffles=" << shuffles.load()
     << " shuffle_records=" << shuffle_records.load()
     << " shuffle_bytes=" << HumanBytes(shuffle_bytes.load())
     << " peak_concurrent_shuffles=" << peak_concurrent_shuffles.load()
     << " task_retries=" << task_retries.load()
     << " stage_reruns=" << stage_reruns.load()
     << " speculative_launches=" << speculative_launches.load()
     << " speculative_wins=" << speculative_wins.load()
     << " recomputed=" << recomputed_partitions.load()
     << " cache_hits=" << cache_hits.load()
     << " cache_misses=" << cache_misses.load()
     << " bytes_cached=" << HumanBytes(bytes_cached.load())
     << " memory_high_water=" << HumanBytes(memory_high_water.load())
     << " evictions=" << evictions.load()
     << " spilled_bytes=" << HumanBytes(spilled_bytes.load())
     << " disk_reads=" << disk_reads.load();
  return os.str();
}

}  // namespace spangle
