#include "engine/engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

namespace spangle {

namespace {

/// Minimal JSON string escaping for stage/task names in trace output.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

Context::Context(int num_workers, int default_parallelism,
                 int task_overhead_us, StorageOptions storage)
    : pool_(num_workers),
      block_manager_(storage, num_workers, &metrics_),
      default_parallelism_(default_parallelism > 0 ? default_parallelism
                                                   : 2 * num_workers),
      task_overhead_us_(task_overhead_us) {}

void Context::RunStage(int n, const std::function<void(int)>& fn) {
  RunStage("stage", n, fn);
}

void Context::RunStage(const std::string& name, int n,
                       const std::function<void(int)>& fn) {
  StageStat stat;
  stat.job_id = internal::CurrentJobId();
  stat.seq = next_stage_seq_.fetch_add(1);
  stat.name = name;
  stat.num_tasks = n;
  stat.tasks.resize(static_cast<size_t>(std::max(n, 0)));
  EngineMetrics::StageAccumulator acc;

  std::vector<std::function<void()>> tasks;
  tasks.reserve(n);
  const int overhead = task_overhead_us_;
  for (int i = 0; i < n; ++i) {
    tasks.emplace_back([this, &fn, &acc, i, overhead] {
      EngineMetrics::ScopedStageAccumulator scope(&acc);
      if (overhead > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(overhead));
      }
      fn(i);
    });
  }
  stat.start_us = pool_.NowMicros();
  // Observer slots are per-index: each written once by the thread that ran
  // the task, read after the batch barrier below (happens-before via the
  // pool's completion wait).
  TaskStat* slots = stat.tasks.data();
  pool_.RunAll(std::move(tasks), [slots](const TaskTiming& t) {
    slots[t.index] = TaskStat{t.index, t.lane, t.start_us, t.duration_us};
  });
  stat.wall_us = pool_.NowMicros() - stat.start_us;

  // Task-time distribution: min/max/total, log-scale histogram, skew
  // ratio (max/mean), and stragglers (tasks slower than 2x the mean).
  if (n > 0) {
    stat.min_task_us = UINT64_MAX;
    for (const TaskStat& t : stat.tasks) {
      stat.min_task_us = std::min(stat.min_task_us, t.duration_us);
      stat.max_task_us = std::max(stat.max_task_us, t.duration_us);
      stat.total_task_us += t.duration_us;
      for (size_t b = 0; b < StageStat::kHistBoundsUs.size(); ++b) {
        if (t.duration_us <= StageStat::kHistBoundsUs[b]) {
          ++stat.task_hist[b];
          break;
        }
      }
    }
    const double mean =
        static_cast<double>(stat.total_task_us) / static_cast<double>(n);
    if (mean > 0) {
      stat.skew_ratio = static_cast<double>(stat.max_task_us) / mean;
      for (const TaskStat& t : stat.tasks) {
        if (static_cast<double>(t.duration_us) > 2.0 * mean) {
          ++stat.num_stragglers;
        }
      }
    }
  }
  stat.shuffle_bytes = acc.shuffle_bytes.load(std::memory_order_relaxed);
  stat.shuffle_records = acc.shuffle_records.load(std::memory_order_relaxed);
  metrics_.RecordStage(std::move(stat));
  metrics_.tasks_run.fetch_add(static_cast<uint64_t>(n));
  metrics_.stages_run.fetch_add(1);
}

void Context::RunJob(internal::NodeBase* root, const std::string& action,
                     int n, const std::function<void(int)>& fn) {
  internal::ScopedJobId job(next_job_id_.fetch_add(1) + 1);
  PhysicalPlan plan = scheduler_.BuildPlan({root}, action);
  scheduler_.MaterializeShuffles(plan, serial_shuffle_materialization());
  RunStage(action, n, fn);
  metrics_.jobs_run.fetch_add(1);
}

PhysicalPlan Context::BuildPlan(internal::NodeBase* root,
                                const std::string& action) {
  return scheduler_.BuildPlan({root}, action);
}

PhysicalPlan Context::BuildPlan(
    const std::vector<internal::NodeBase*>& roots,
    const std::string& action) {
  return scheduler_.BuildPlan(roots, action);
}

void Context::EnsureShuffleDependencies(internal::NodeBase* node) {
  EnsureShuffleDependencies(std::vector<internal::NodeBase*>{node});
}

void Context::EnsureShuffleDependencies(
    const std::vector<internal::NodeBase*>& roots) {
  // Materialize-only job (no result stage). Runs under the caller's job
  // id when one is active (e.g. called from RunJob), else under its own.
  const bool in_job = internal::CurrentJobId() != 0;
  internal::ScopedJobId job(in_job ? internal::CurrentJobId()
                                   : next_job_id_.fetch_add(1) + 1);
  PhysicalPlan plan = scheduler_.BuildPlan(roots, "");
  scheduler_.MaterializeShuffles(plan, serial_shuffle_materialization());
  if (!in_job) metrics_.jobs_run.fetch_add(1);
}

bool Context::DumpTrace(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  // Chrome trace_event JSON (chrome://tracing, ui.perfetto.dev).
  // pid 0 = executor lanes (one tid per lane, complete events per task);
  // pid 1 = driver (one tid per stage so overlapping stages render as
  // parallel rows).
  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", f);
  std::fputs(
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
      "\"args\":{\"name\":\"executors\"}},\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
      "\"args\":{\"name\":\"driver (stages)\"}}",
      f);
  for (const StageStat& s : metrics_.StageStats()) {
    const std::string name = JsonEscape(s.name);
    std::fprintf(f,
                 ",\n{\"name\":\"%s\",\"cat\":\"stage\",\"ph\":\"X\","
                 "\"ts\":%llu,\"dur\":%llu,\"pid\":1,\"tid\":%llu,"
                 "\"args\":{\"job\":%llu,\"tasks\":%d,\"skew\":%.2f,"
                 "\"stragglers\":%d,\"shuffle_bytes\":%llu}}",
                 name.c_str(), static_cast<unsigned long long>(s.start_us),
                 static_cast<unsigned long long>(s.wall_us),
                 static_cast<unsigned long long>(s.seq),
                 static_cast<unsigned long long>(s.job_id), s.num_tasks,
                 s.skew_ratio, s.num_stragglers,
                 static_cast<unsigned long long>(s.shuffle_bytes));
    for (const TaskStat& t : s.tasks) {
      std::fprintf(f,
                   ",\n{\"name\":\"%s[%d]\",\"cat\":\"task\",\"ph\":\"X\","
                   "\"ts\":%llu,\"dur\":%llu,\"pid\":0,\"tid\":%d,"
                   "\"args\":{\"job\":%llu,\"stage\":%llu}}",
                   name.c_str(), t.index,
                   static_cast<unsigned long long>(t.start_us),
                   static_cast<unsigned long long>(t.duration_us), t.lane,
                   static_cast<unsigned long long>(s.job_id),
                   static_cast<unsigned long long>(s.seq));
    }
  }
  std::fputs("\n]}\n", f);
  const bool ok = std::fclose(f) == 0;
  return ok;
}

}  // namespace spangle
