#include "engine/engine.h"

#include <chrono>
#include <thread>

namespace spangle {

Context::Context(int num_workers, int default_parallelism,
                 int task_overhead_us, StorageOptions storage)
    : pool_(num_workers),
      block_manager_(storage, num_workers, &metrics_),
      default_parallelism_(default_parallelism > 0 ? default_parallelism
                                                   : 2 * num_workers),
      task_overhead_us_(task_overhead_us) {}

void Context::RunStage(int n, const std::function<void(int)>& fn) {
  std::vector<std::function<void()>> tasks;
  tasks.reserve(n);
  const int overhead = task_overhead_us_;
  for (int i = 0; i < n; ++i) {
    tasks.emplace_back([&fn, i, overhead] {
      if (overhead > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(overhead));
      }
      fn(i);
    });
  }
  pool_.RunAll(std::move(tasks));
  metrics_.tasks_run.fetch_add(static_cast<uint64_t>(n));
  metrics_.stages_run.fetch_add(1);
}

void Context::EnsureShuffleDependencies(internal::NodeBase* node) {
  // Post-order DFS: materialize ancestor shuffles before descendants.
  // Materialized shuffle nodes cut the walk — their output is available,
  // so nothing above them needs to run (Spark skips completed stages).
  std::unordered_set<uint64_t> visited;
  std::function<void(internal::NodeBase*)> visit =
      [&](internal::NodeBase* n) {
        if (n == nullptr || !visited.insert(n->id()).second) return;
        if (n->IsShuffle() && n->IsMaterialized()) return;
        for (internal::NodeBase* parent : n->Parents()) visit(parent);
        if (n->IsShuffle()) n->Materialize();
      };
  visit(node);
}

}  // namespace spangle
