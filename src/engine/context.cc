#include "engine/engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iterator>
#include <thread>
#include <unordered_map>

#include "codec/hash.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "engine/metrics_export.h"
#include "net/executor_fleet.h"

namespace spangle {

namespace {

/// First-finisher-wins gate for one task index. Duplicate attempts of the
/// same task (speculation) serialize on `mu`: exactly one attempt ever
/// runs the task body; the other observes fn_done and returns without
/// side effects. The cv doubles as the interruptible-sleep channel — a
/// straggler sitting out an injected delay wakes as soon as the other
/// attempt wins.
struct TaskGate {
  // Rank kTaskGate (outermost): gate.mu is held across fn(i), whose body
  // may take BlockManager / RuntimeProfile / metrics locks. Gates of
  // different task indices share the rank because they are never nested:
  // the pool now tolerates nested RunAll (per-batch state), but a nested
  // *stage* would acquire a second gate under this one, and same-rank
  // acquisitions abort in the lock-rank detector — so RunStage-inside-a-
  // task stays banned, by the detector instead of a pool CHECK.
  Mutex mu{LockRank::kTaskGate, "TaskGate::mu"};
  CondVar cv;
  bool fn_done GUARDED_BY(mu) = false;
  // settled by the re-launched copy
  bool winner_speculative GUARDED_BY(mu) = false;
};

}  // namespace

Context::Context(int num_workers, int default_parallelism,
                 int task_overhead_us, StorageOptions storage,
                 DeploymentOptions deploy)
    : pool_(num_workers),
      block_manager_(storage, num_workers, &metrics_),
      default_parallelism_(default_parallelism > 0 ? default_parallelism
                                                   : 2 * num_workers),
      task_overhead_us_(task_overhead_us) {
  trace_spans_.set_enabled(deploy.distributed.tracing);
  if (deploy.mode == DeploymentMode::kDistributed) {
    // The fleet stamps trace headers from the calling thread's context,
    // mints client span ids from trace_spans_, and uses the pool clock as
    // the trace epoch so client spans align with stage/task events.
    fleet_ = std::make_unique<net::ExecutorFleet>(
        deploy.distributed, &metrics_, &trace_spans_,
        [this] { return pool_.NowMicros(); });
    const Status st = fleet_->Start();
    // A context that cannot reach its executors is unusable; failing
    // loudly at construction beats every later job hanging on RPCs.
    SPANGLE_CHECK(st.ok()) << "executor fleet start failed: "
                           << st.ToString();
    remote_shuffle_ = std::make_unique<net::RemoteShuffleFetcher>(
        fleet_.get(), &metrics_);
  }
}

Context::~Context() {
  if (fleet_ != nullptr) fleet_->Shutdown();
}

void Context::FailExecutor(int worker) {
  block_manager_.FailExecutor(worker);
  if (fleet_ != nullptr) fleet_->FailExecutor(worker % fleet_->num_executors());
}

void Context::RunStage(int n, const std::function<void(int)>& fn) {
  RunStage("stage", n, fn, /*stage_attempt=*/0);
}

void Context::RunStage(const std::string& name, int n,
                       const std::function<void(int)>& fn) {
  RunStage(name, n, fn, /*stage_attempt=*/0);
}

void Context::RunStage(const std::string& name, int n,
                       const std::function<void(int)>& fn,
                       int stage_attempt) {
  const FaultToleranceOptions opts = fault_options();
  const std::shared_ptr<const ChaosPolicy> chaos = chaos_policy();
  // Bound to every task thread of this stage (null = profiling off, all
  // hooks reduce to one branch).
  RuntimeProfile* const profile = profiling_enabled() ? &profile_ : nullptr;

  StageStat stat;
  stat.job_id = internal::CurrentJobId();
  stat.seq = next_stage_seq_.fetch_add(1);
  stat.name = name;
  stat.attempt = stage_attempt;
  stat.num_tasks = n;
  stat.tasks.resize(static_cast<size_t>(std::max(n, 0)));
  EngineMetrics::StageAccumulator acc;

  // Trace identity for this stage: inherit the ambient context (bound by
  // RunJob or a scheduler driver thread), falling back to the job id as
  // the trace id so stages reached without RunJob still trace. Each task
  // rebinds with a freshly minted span id, which is what the fleet stamps
  // as parent_span_id on the RPCs that task issues.
  TraceContext stage_trace;
  if (trace_spans_.enabled()) {
    stage_trace = trace::Current();
    if (stage_trace.trace_id == 0) stage_trace.trace_id = stat.job_id;
  }

  ExecutorPool::SpeculationOptions spec;
  spec.enabled = opts.speculation;
  spec.multiplier = opts.speculation_multiplier;
  spec.min_runtime_us = opts.speculation_min_runtime_us;
  spec.min_completed_fraction = opts.speculation_min_completed_fraction;
  spec.check_interval_us = opts.speculation_check_interval_us;

  // Per-index gates outlive every attempt of the stage (the pool's batch
  // barrier waits for losers too, so stack storage is safe).
  std::vector<TaskGate> gates(static_cast<size_t>(std::max(n, 0)));
  // Attempts already consumed by finished rounds, per index; written by
  // the driver between rounds only.
  std::vector<int> attempt_base(static_cast<size_t>(std::max(n, 0)), 0);

  // Primary per-index timing slots live in stat.tasks[0..n); retry and
  // speculative attempts are appended afterwards as extra trace lanes.
  TaskStat* slots = stat.tasks.data();
  Mutex extra_mu{LockRank::kLeaf, "RunStage::extra_mu"};
  std::vector<TaskStat> extras;

  const int overhead = task_overhead_us_;
  stat.start_us = pool_.NowMicros();
  if (profile != nullptr) profile->SampleCounters(stat.start_us);

  std::vector<int> pending(static_cast<size_t>(std::max(n, 0)));
  for (int i = 0; i < n; ++i) pending[static_cast<size_t>(i)] = i;
  std::vector<uint64_t> lost_nodes;
  Status last_failure;

  // Finalization shared by the success path and both abort paths, so
  // every stage execution — including aborted ones — leaves a complete
  // StageStat for Explain()/DumpTrace.
  const auto Finalize = [&] {
    stat.wall_us = pool_.NowMicros() - stat.start_us;
    if (profile != nullptr) profile->SampleCounters(pool_.NowMicros());
    // Locked per gate: the batch barrier already orders these writes
    // before us, but the lock keeps the guarded-field contract uniform
    // (and the analysis checkable) on this read-side path too.
    for (TaskGate& g : gates) {
      MutexLock lock(&g.mu);
      if (g.fn_done && g.winner_speculative) ++stat.speculative_wins;
    }
    if (stat.speculative_wins > 0) {
      metrics_.speculative_wins.fetch_add(
          static_cast<uint64_t>(stat.speculative_wins));
    }
    // Task-time distribution over the primary attempts: min/max/total,
    // log-scale histogram, skew ratio (max/mean), stragglers (> 2x mean).
    if (n > 0) {
      stat.min_task_us = UINT64_MAX;
      for (int i = 0; i < n; ++i) {
        const TaskStat& t = stat.tasks[static_cast<size_t>(i)];
        stat.min_task_us = std::min(stat.min_task_us, t.duration_us);
        stat.max_task_us = std::max(stat.max_task_us, t.duration_us);
        stat.total_task_us += t.duration_us;
        metrics_.task_duration_us.Observe(
            static_cast<double>(t.duration_us));
        for (size_t b = 0; b < StageStat::kHistBoundsUs.size(); ++b) {
          if (t.duration_us <= StageStat::kHistBoundsUs[b]) {
            ++stat.task_hist[b];
            break;
          }
        }
      }
      const double mean =
          static_cast<double>(stat.total_task_us) / static_cast<double>(n);
      if (mean > 0) {
        stat.skew_ratio = static_cast<double>(stat.max_task_us) / mean;
        for (int i = 0; i < n; ++i) {
          if (static_cast<double>(
                  stat.tasks[static_cast<size_t>(i)].duration_us) >
              2.0 * mean) {
            ++stat.num_stragglers;
          }
        }
      }
    }
    metrics_.task_time_us.fetch_add(stat.total_task_us,
                                    std::memory_order_relaxed);
    stat.shuffle_bytes = acc.shuffle_bytes.load(std::memory_order_relaxed);
    stat.shuffle_records =
        acc.shuffle_records.load(std::memory_order_relaxed);
    stat.remote_fetch_us =
        acc.remote_fetch_us.load(std::memory_order_relaxed);
    stat.tasks.insert(stat.tasks.end(), extras.begin(), extras.end());
  };

  for (int round = 0;; ++round) {
    std::vector<ExecutorPool::Task> tasks;
    tasks.reserve(pending.size());
    net::ExecutorFleet* const fleet = fleet_.get();
    for (const int i : pending) {
      tasks.emplace_back([this, &fn, &acc, &gates, &attempt_base, &chaos,
                          &name, &stage_trace, stage_attempt, overhead,
                          profile, fleet, i](int pool_attempt) {
        EngineMetrics::ScopedStageAccumulator scope(&acc);
        prof::ScopedThreadProfile profile_scope(profile);
        // Per-task trace context: the DispatchTask/Put/Fetch RPCs this
        // task issues parent under the task's span id.
        TraceContext task_trace = stage_trace;
        if (task_trace.trace_id != 0) {
          task_trace.parent_span_id = stage_trace.span_id;
          task_trace.span_id = trace_spans_.NextSpanId();
        }
        trace::ScopedContext trace_scope(task_trace);
        TaskGate& gate = gates[static_cast<size_t>(i)];
        const int attempt = attempt_base[static_cast<size_t>(i)] + pool_attempt;
        uint64_t delay = static_cast<uint64_t>(overhead > 0 ? overhead : 0);
        if (chaos != nullptr) {
          const ChaosTaskInfo info{name, stage_attempt, i, attempt};
          if (chaos->fail_executor) {
            const int w = chaos->fail_executor(info);
            // Routed through Context::FailExecutor: in DISTRIBUTED mode
            // this SIGKILLs a real daemon, making the chaos suite a
            // genuine distributed-failure test.
            if (w >= 0) FailExecutor(w);
          }
          if (chaos->delay_us) delay += chaos->delay_us(info);
          if (chaos->fail_task && chaos->fail_task(info)) {
            if (delay > 0) {
              std::this_thread::sleep_for(std::chrono::microseconds(delay));
            }
            throw TaskKilledError(name, i, attempt);
          }
        }
        if (fleet != nullptr) {
          // Control-plane dispatch: a liveness/accounting roundtrip on
          // the task's assigned daemon before the body runs in the
          // driver (C++ closures do not serialize; see DESIGN.md §11).
          // A dead daemon becomes a retryable failure — the fleet has
          // already restarted a replacement by the time the retry round
          // re-dispatches.
          const Status st = fleet->DispatchTask(name, i, attempt);
          if (!st.ok()) throw ExecutorLostError(name, i, st.ToString());
        }
        if (delay > 0) {
          // Interruptible: a speculative loser sleeping out an injected
          // delay yields the moment the other attempt wins. Explicit
          // deadline loop (not a predicate lambda) so the fn_done reads
          // stay in this scope, where the analysis sees gate.mu held.
          const auto deadline = std::chrono::steady_clock::now() +
                                std::chrono::microseconds(delay);
          MutexLock lock(&gate.mu);
          while (!gate.fn_done &&
                 gate.cv.WaitUntil(gate.mu, deadline) !=
                     std::cv_status::timeout) {
          }
          if (gate.fn_done) return;  // discarded loser
        }
        {
          MutexLock lock(&gate.mu);
          if (gate.fn_done) return;  // discarded loser
          fn(i);  // throws propagate with fn_done still false
          gate.fn_done = true;
          gate.winner_speculative = pool_attempt > 0;
        }
        gate.cv.NotifyAll();
      });
    }

    const auto observer = [&pending, &attempt_base, slots, &extra_mu,
                           &extras, round](const TaskTiming& t) {
      const int real = pending[static_cast<size_t>(t.index)];
      const TaskStat ts{real, t.lane, t.start_us, t.duration_us,
                        attempt_base[static_cast<size_t>(real)] + t.attempt};
      if (round == 0 && t.attempt == 0) {
        // Per-index slot, written once by the thread that ran the primary
        // attempt, read after the batch barrier (happens-before via the
        // pool's completion wait).
        slots[real] = ts;
      } else {
        MutexLock lock(&extra_mu);
        extras.push_back(ts);
      }
    };

    ExecutorPool::BatchResult res =
        pool_.RunAll(std::move(tasks), observer, spec);
    if (res.speculative_launches > 0) {
      stat.speculative_launches += res.speculative_launches;
      metrics_.speculative_launches.fetch_add(
          static_cast<uint64_t>(res.speculative_launches));
    }

    std::vector<int> retry;
    for (size_t j = 0; j < pending.size(); ++j) {
      const int i = pending[j];
      const ExecutorPool::TaskResult& tr = res.tasks[j];
      attempt_base[static_cast<size_t>(i)] += tr.attempts;
      if (tr.status.ok()) continue;
      try {
        std::rethrow_exception(tr.error);
      } catch (const ShuffleBlockLostError& e) {
        // Fetch failure: retrying the task cannot help until the upstream
        // stage re-materializes. Escalate to job-level recovery.
        for (const uint64_t node : e.nodes()) {
          if (std::find(lost_nodes.begin(), lost_nodes.end(), node) ==
              lost_nodes.end()) {
            lost_nodes.push_back(node);
          }
        }
      } catch (...) {
        retry.push_back(i);
        last_failure = tr.status;
      }
    }

    if (!lost_nodes.empty()) {
      Finalize();
      metrics_.RecordStage(std::move(stat));
      throw ShuffleBlockLostError(std::move(lost_nodes));
    }
    if (retry.empty()) break;
    if (round >= opts.max_task_retries) {
      Finalize();
      metrics_.RecordStage(std::move(stat));
      throw JobFailedError(
          "stage '" + name + "' failed: task exhausted " +
          std::to_string(opts.max_task_retries) + " retries; last error: " +
          std::string(last_failure.message()));
    }
    metrics_.task_retries.fetch_add(retry.size());
    stat.task_retries += static_cast<int>(retry.size());
    if (opts.retry_backoff_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(
          opts.retry_backoff_us << std::min(round, 16)));
    }
    pending = std::move(retry);
  }

  Finalize();
  metrics_.RecordStage(std::move(stat));
  metrics_.tasks_run.fetch_add(static_cast<uint64_t>(n));
  metrics_.stages_run.fetch_add(1);
}

void Context::RunJob(internal::NodeBase* root, const std::string& action,
                     int n, const std::function<void(int)>& fn) {
  // Runs under the caller's job id when one is bound (the JobServer's
  // dispatchers bind one id per served job so every StageStat of that
  // job carries the same tenant-attributable id), else mints its own.
  const uint64_t ambient = internal::CurrentJobId();
  const uint64_t job_id =
      ambient != 0 ? ambient : next_job_id_.fetch_add(1) + 1;
  internal::ScopedJobId job(job_id);
  // Job-root trace span: trace_id is the job id (unique per context), so
  // every stage, task, client RPC and daemon serve span of this job
  // shares one trace. Untouched when tracing is off or the caller already
  // bound a context.
  TraceContext job_trace = trace::Current();
  if (trace_spans_.enabled() && job_trace.trace_id == 0) {
    job_trace.trace_id = job_id;
    job_trace.span_id = trace_spans_.NextSpanId();
  }
  trace::ScopedContext trace_scope(job_trace);
  const FaultToleranceOptions opts = fault_options();
  const int max_attempts = std::max(1, opts.max_job_attempts);
  for (int attempt = 0;; ++attempt) {
    // Re-planning each attempt is what makes recovery stage-granular:
    // shuffles whose output survived report IsMaterialized() and are
    // skipped; only lost ones re-run from lineage.
    PhysicalPlan plan = scheduler_.BuildPlan({root}, action);
    try {
      scheduler_.MaterializeShuffles(plan, serial_shuffle_materialization());
      RunStage(action, n, fn, attempt);
      break;
    } catch (const ShuffleBlockLostError& e) {
      if (attempt + 1 >= max_attempts) {
        throw JobFailedError("job '" + action + "' failed after " +
                             std::to_string(attempt + 1) +
                             " attempt(s): " + e.what());
      }
      SPANGLE_LOG(Warning) << "job '" << action << "' attempt " << attempt
                           << ": " << e.what() << "; re-planning";
    }
  }
  metrics_.jobs_run.fetch_add(1);
}

PhysicalPlan Context::BuildPlan(internal::NodeBase* root,
                                const std::string& action) {
  return scheduler_.BuildPlan({root}, action);
}

PhysicalPlan Context::BuildPlan(
    const std::vector<internal::NodeBase*>& roots,
    const std::string& action) {
  return scheduler_.BuildPlan(roots, action);
}

void Context::EnsureShuffleDependencies(internal::NodeBase* node) {
  EnsureShuffleDependencies(std::vector<internal::NodeBase*>{node});
}

void Context::EnsureShuffleDependencies(
    const std::vector<internal::NodeBase*>& roots) {
  // Materialize-only job (no result stage). Runs under the caller's job
  // id when one is active (e.g. called from RunJob), else under its own.
  const bool in_job = internal::CurrentJobId() != 0;
  const uint64_t job_id =
      in_job ? internal::CurrentJobId() : next_job_id_.fetch_add(1) + 1;
  internal::ScopedJobId job(job_id);
  TraceContext job_trace = trace::Current();
  if (trace_spans_.enabled() && job_trace.trace_id == 0) {
    job_trace.trace_id = job_id;
    job_trace.span_id = trace_spans_.NextSpanId();
  }
  trace::ScopedContext trace_scope(job_trace);
  const FaultToleranceOptions opts = fault_options();
  const int max_attempts = std::max(1, opts.max_job_attempts);
  for (int attempt = 0;; ++attempt) {
    PhysicalPlan plan = scheduler_.BuildPlan(roots, "");
    try {
      scheduler_.MaterializeShuffles(plan, serial_shuffle_materialization());
      break;
    } catch (const ShuffleBlockLostError& e) {
      if (attempt + 1 >= max_attempts) {
        throw JobFailedError("shuffle materialization failed after " +
                             std::to_string(attempt + 1) +
                             " attempt(s): " + e.what());
      }
      SPANGLE_LOG(Warning) << "materialization attempt " << attempt << ": "
                           << e.what() << "; re-planning";
    }
  }
  if (!in_job) metrics_.jobs_run.fetch_add(1);
}

bool Context::DumpTrace(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  // Chrome trace_event JSON (chrome://tracing, ui.perfetto.dev).
  // pid 0 = executor lanes (one tid per lane, complete events per task);
  // pid 1 = driver (one tid per stage so overlapping stages render as
  // parallel rows); pid 2 = counter tracks (cache pressure, shuffle
  // volume, shuffle concurrency sampled at stage boundaries). Task
  // events carry their attempt number, so retries and speculative
  // copies show up as extra slices on their lanes.
  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", f);
  std::fputs(
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
      "\"args\":{\"name\":\"executors\"}},\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
      "\"args\":{\"name\":\"driver (stages)\"}}",
      f);
  for (const StageStat& s : metrics_.StageStats()) {
    const std::string name = JsonEscape(s.name);
    std::fprintf(f,
                 ",\n{\"name\":\"%s\",\"cat\":\"stage\",\"ph\":\"X\","
                 "\"ts\":%llu,\"dur\":%llu,\"pid\":1,\"tid\":%llu,"
                 "\"args\":{\"job\":%llu,\"attempt\":%d,\"tasks\":%d,"
                 "\"skew\":%.2f,\"stragglers\":%d,\"task_retries\":%d,"
                 "\"shuffle_bytes\":%llu}}",
                 name.c_str(), static_cast<unsigned long long>(s.start_us),
                 static_cast<unsigned long long>(s.wall_us),
                 static_cast<unsigned long long>(s.seq),
                 static_cast<unsigned long long>(s.job_id), s.attempt,
                 s.num_tasks, s.skew_ratio, s.num_stragglers, s.task_retries,
                 static_cast<unsigned long long>(s.shuffle_bytes));
    for (const TaskStat& t : s.tasks) {
      std::fprintf(f,
                   ",\n{\"name\":\"%s[%d]\",\"cat\":\"task\",\"ph\":\"X\","
                   "\"ts\":%llu,\"dur\":%llu,\"pid\":0,\"tid\":%d,"
                   "\"args\":{\"job\":%llu,\"stage\":%llu,\"attempt\":%d}}",
                   name.c_str(), t.index,
                   static_cast<unsigned long long>(t.start_us),
                   static_cast<unsigned long long>(t.duration_us), t.lane,
                   static_cast<unsigned long long>(s.job_id),
                   static_cast<unsigned long long>(s.seq), t.attempt);
    }
  }
  const auto samples = profile_.CounterSamples();
  if (!samples.empty()) {
    std::fputs(
        ",\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,"
        "\"args\":{\"name\":\"counters\"}}",
        f);
    for (const auto& cs : samples) {
      std::fprintf(f,
                   ",\n{\"name\":\"bytes_cached\",\"ph\":\"C\",\"ts\":%llu,"
                   "\"pid\":2,\"args\":{\"bytes\":%llu}}"
                   ",\n{\"name\":\"shuffle_bytes\",\"ph\":\"C\",\"ts\":%llu,"
                   "\"pid\":2,\"args\":{\"bytes\":%llu}}"
                   ",\n{\"name\":\"concurrent_shuffles\",\"ph\":\"C\","
                   "\"ts\":%llu,\"pid\":2,\"args\":{\"stages\":%llu}}",
                   static_cast<unsigned long long>(cs.t_us),
                   static_cast<unsigned long long>(cs.bytes_cached),
                   static_cast<unsigned long long>(cs.t_us),
                   static_cast<unsigned long long>(cs.shuffle_bytes),
                   static_cast<unsigned long long>(cs.t_us),
                   static_cast<unsigned long long>(cs.concurrent_shuffles));
    }
  }
  // Distributed-tracing lanes: one final scrape pulls any spans still
  // sitting in daemon rings, then the driver's client RPC spans and every
  // collected daemon serve span (clock-offset adjusted at collection
  // time) render as extra pid lanes with flow arrows tying a driver span
  // to the daemon work it triggered.
  if (fleet_ != nullptr) fleet_->ScrapeAll();
  std::vector<TraceSpan> rpc_spans = trace_spans_.Snapshot();
  if (fleet_ != nullptr) {
    std::vector<TraceSpan> daemon_spans = fleet_->CollectedSpans();
    rpc_spans.insert(rpc_spans.end(),
                     std::make_move_iterator(daemon_spans.begin()),
                     std::make_move_iterator(daemon_spans.end()));
  }
  trace::WriteSpanEvents(f, rpc_spans);
  std::fputs("\n]}\n", f);
  const bool ok = std::fclose(f) == 0;
  return ok;
}

std::string Context::MetricsJson() const {
  if (fleet_ == nullptr) return spangle::MetricsJson(metrics_);
  // Refresh the daemon snapshots so the export reflects "now", not the
  // last heartbeat round, then emit the fleet-labeled variant.
  fleet_->ScrapeAll();
  return spangle::MetricsJson(metrics_, fleet_->ExecutorStats());
}

bool Context::DumpMetricsJson(const std::string& path) const {
  return WriteStringToFile(MetricsJson(), path);
}

std::string Context::MetricsPrometheus() const {
  if (fleet_ == nullptr) return spangle::MetricsPrometheus(metrics_);
  fleet_->ScrapeAll();
  return spangle::MetricsPrometheus(metrics_, fleet_->ExecutorStats());
}

bool Context::DumpMetricsPrometheus(const std::string& path) const {
  return WriteStringToFile(MetricsPrometheus(), path);
}

namespace internal {

namespace {

// Postorder digest walk, memoized per call so diamond lineages hash each
// node once. 0 is the "not cacheable" sentinel and propagates upward.
uint64_t DigestWalk(const NodeBase* n,
                    std::unordered_map<const NodeBase*, uint64_t>& memo) {
  const auto it = memo.find(n);
  if (it != memo.end()) return it->second;
  uint64_t h = codec::Hash64(n->name().data(), n->name().size());
  const uint64_t fields[3] = {static_cast<uint64_t>(n->num_partitions()),
                              n->IsShuffle() ? 1u : 0u, n->digest_seed()};
  h = codec::Hash64(fields, sizeof(fields), h);
  const std::vector<NodeBase*> parents = n->Parents();
  // A source node's content is exactly its declared seed; undeclared
  // sources poison the whole digest (see the header contract).
  bool opaque = parents.empty() && n->digest_seed() == 0;
  for (const NodeBase* p : parents) {
    const uint64_t pd = DigestWalk(p, memo);
    if (pd == 0) {
      opaque = true;
      break;
    }
    h = codec::Hash64(&pd, sizeof(pd), h);
  }
  // Reserve 0 for "opaque": an (astronomically unlikely) zero hash of a
  // cacheable plan is remapped rather than silently disabling its cache.
  const uint64_t out = opaque ? 0 : (h == 0 ? 1 : h);
  memo.emplace(n, out);
  return out;
}

}  // namespace

uint64_t LineageDigest(const NodeBase* node) {
  if (node == nullptr) return 0;
  std::unordered_map<const NodeBase*, uint64_t> memo;
  return DigestWalk(node, memo);
}

}  // namespace internal

}  // namespace spangle
