#ifndef SPANGLE_ENGINE_METRICS_EXPORT_H_
#define SPANGLE_ENGINE_METRICS_EXPORT_H_

#include <string>
#include <vector>

#include "engine/metrics.h"
#include "engine/trace.h"

namespace spangle {

/// Escapes `s` for embedding inside a JSON string literal (quotes,
/// backslashes, and control characters; the latter as \uXXXX). Shared by
/// the metrics exporters and the Chrome trace writer.
std::string JsonEscape(const std::string& s);

/// Machine-readable snapshot of every registered metric:
///   {"metrics":[{"name":...,"kind":...,"unit":...,"help":...,"value":N} |
///               {..., "count":N,"sum":S,"bounds":[...],
///                "bucket_counts":[...]}],
///    "stage_stats":{"retained":N,"dropped":M}}
/// Histogram bucket_counts has bounds.size()+1 entries; the last is the
/// open overflow bucket (JSON has no +Inf literal).
std::string MetricsJson(const EngineMetrics& metrics);

/// Fleet-aware variant: appends a "fleet" array with one object per
/// executor (heartbeat gauges, clock offset, restart count, and the
/// scraped scalar snapshot of the daemon's own registry). Distributed
/// contexts export through this overload after a ScrapeAll().
std::string MetricsJson(const EngineMetrics& metrics,
                        const std::vector<FleetExecutorStats>& fleet);

/// Prometheus text exposition format (version 0.0.4): one HELP/TYPE pair
/// per metric, `prefix` prepended to every name. Timers export as
/// counters; histograms emit cumulative _bucket{le=...} series plus _sum
/// and _count, per the Prometheus histogram convention.
std::string MetricsPrometheus(const EngineMetrics& metrics,
                              const std::string& prefix = "spangle_");

/// Fleet-aware variant: additionally emits per-executor families labeled
/// executor="N" — the driver-side gauges as `<prefix>executor_*` and each
/// scraped daemon registry scalar as `<prefix>executor_daemon_<name>`.
/// Series of one family are grouped under a single # TYPE line, per the
/// exposition format (the lint test enforces this).
std::string MetricsPrometheus(const EngineMetrics& metrics,
                              const std::vector<FleetExecutorStats>& fleet,
                              const std::string& prefix = "spangle_");

/// Writes `content` to `path`; false when the file cannot be written.
bool WriteStringToFile(const std::string& content, const std::string& path);

}  // namespace spangle

#endif  // SPANGLE_ENGINE_METRICS_EXPORT_H_
