#ifndef SPANGLE_ENGINE_METRICS_EXPORT_H_
#define SPANGLE_ENGINE_METRICS_EXPORT_H_

#include <string>

#include "engine/metrics.h"

namespace spangle {

/// Escapes `s` for embedding inside a JSON string literal (quotes,
/// backslashes, and control characters; the latter as \uXXXX). Shared by
/// the metrics exporters and the Chrome trace writer.
std::string JsonEscape(const std::string& s);

/// Machine-readable snapshot of every registered metric:
///   {"metrics":[{"name":...,"kind":...,"unit":...,"help":...,"value":N} |
///               {..., "count":N,"sum":S,"bounds":[...],
///                "bucket_counts":[...]}],
///    "stage_stats":{"retained":N,"dropped":M}}
/// Histogram bucket_counts has bounds.size()+1 entries; the last is the
/// open overflow bucket (JSON has no +Inf literal).
std::string MetricsJson(const EngineMetrics& metrics);

/// Prometheus text exposition format (version 0.0.4): one HELP/TYPE pair
/// per metric, `prefix` prepended to every name. Timers export as
/// counters; histograms emit cumulative _bucket{le=...} series plus _sum
/// and _count, per the Prometheus histogram convention.
std::string MetricsPrometheus(const EngineMetrics& metrics,
                              const std::string& prefix = "spangle_");

/// Writes `content` to `path`; false when the file cannot be written.
bool WriteStringToFile(const std::string& content, const std::string& path);

}  // namespace spangle

#endif  // SPANGLE_ENGINE_METRICS_EXPORT_H_
