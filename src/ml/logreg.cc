#include "ml/logreg.h"

#include <cmath>
#include <unordered_set>

#include "common/random.h"
#include "common/stopwatch.h"

namespace spangle {

namespace {

double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

Result<TrainResult> TrainLogReg(Context* ctx, const SparseDataset& data,
                                const LogRegOptions& options) {
  if (data.labels.size() != data.rows) {
    return Status::InvalidArgument("label count != row count");
  }
  if (data.rows == 0 || data.features == 0) {
    return Status::InvalidArgument("empty dataset");
  }
  const uint64_t block = options.block;
  const int np = options.num_partitions > 0 ? options.num_partitions
                                            : ctx->default_parallelism();
  // Row-band placement: partition <- row block (Eq. 2), so mini-batch
  // sampling never crosses partitions.
  SPANGLE_ASSIGN_OR_RETURN(
      BlockMatrix m,
      BlockMatrix::FromEntries(ctx, data.rows, data.features, block,
                               data.entries, ModePolicy::Auto(),
                               PartitionScheme::kByRowBlock, np));
  m.Cache();
  BlockVector y = BlockVector::FromDense(ctx, data.labels, block, np);
  y.Cache();

  const uint64_t n_row_blocks = m.num_row_blocks();
  const uint64_t n_sampled = std::max<uint64_t>(
      1, static_cast<uint64_t>(options.batch_fraction *
                               static_cast<double>(n_row_blocks)));
  Rng rng(options.seed);

  BlockVector x = BlockVector::FromDense(
      ctx, std::vector<double>(data.features, 0.0), block, np);
  x.Cache();
  // Adagrad state: per-feature accumulated squared gradients.
  BlockVector g_hist = BlockVector::FromDense(
      ctx, std::vector<double>(data.features, 0.0), block, np);

  TrainResult result;
  Stopwatch total_timer;
  for (int it = 0; it < options.max_iterations; ++it) {
    Stopwatch iter_timer;
    // Mini-batch: sample row blocks (reverse Eq. 2 — local per partition).
    auto sampled = std::make_shared<std::unordered_set<uint64_t>>();
    while (sampled->size() < n_sampled) {
      sampled->insert(rng.NextBounded(n_row_blocks));
    }
    uint64_t batch_rows = 0;
    for (uint64_t rb : *sampled) {
      batch_rows += std::min<uint64_t>(block, data.rows - rb * block);
    }
    BlockMatrix mt = m.FilterRowBlocks(sampled);

    // diff = h(M_t x) - y on sampled rows, 0 elsewhere.
    SPANGLE_ASSIGN_OR_RETURN(BlockVector z, mt.MultiplyVector(x));
    SPANGLE_ASSIGN_OR_RETURN(
        BlockVector hz_minus_y,
        z.Map(Sigmoid).AddScaled(y, -1.0));
    BlockVector diff = hz_minus_y.MapBlocks(
        [sampled](uint64_t b, const VecBlock& blk) {
          if (sampled->count(b) > 0) return blk;
          VecBlock zero;
          zero.values.assign(blk.values.size(), 0.0);
          return zero;
        });

    // Gradient: opt1 computes ((diff)^T M_t)^T (Eq. 3, no matrix
    // transpose); the baseline transposes M_t physically every step.
    BlockVector grad;
    if (options.opt1) {
      SPANGLE_ASSIGN_OR_RETURN(grad, mt.LeftMultiplyVector(diff));
      // grad is a row vector; opt2 re-describes it as a column in O(1),
      // the baseline rewrites the layout.
      grad = options.opt2 ? grad.TransposeMetadata()
                          : grad.TransposePhysical();
    } else {
      SPANGLE_ASSIGN_OR_RETURN(grad,
                               mt.Transpose().MultiplyVector(diff));
    }

    const double scale =
        -options.step_size / static_cast<double>(batch_rows);
    BlockVector x_next;
    if (options.adagrad) {
      // Normalize the gradient first so the accumulated history matches
      // the applied step direction.
      const double inv_batch = 1.0 / static_cast<double>(batch_rows);
      BlockVector g = grad.Map([inv_batch](double v) {
        return v * inv_batch;
      });
      SPANGLE_ASSIGN_OR_RETURN(
          g_hist, g_hist.Combine(g, [](double h, double gi) {
            return h + gi * gi;
          }));
      g_hist.Cache();
      SPANGLE_ASSIGN_OR_RETURN(
          BlockVector adapted,
          g.Combine(g_hist, [eps = options.adagrad_epsilon](double gi,
                                                            double h) {
            return gi / (std::sqrt(h) + eps);
          }));
      SPANGLE_ASSIGN_OR_RETURN(x_next,
                               x.AddScaled(adapted, -options.step_size));
    } else {
      SPANGLE_ASSIGN_OR_RETURN(x_next, x.AddScaled(grad, scale));
    }
    x_next.Cache();

    SPANGLE_ASSIGN_OR_RETURN(BlockVector delta, x_next.AddScaled(x, -1.0));
    const double step_norm = std::sqrt(delta.SquaredNorm());
    x = x_next;
    result.iteration_seconds.push_back(iter_timer.ElapsedSeconds());
    result.iterations = it + 1;
    if (step_norm < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.total_seconds = total_timer.ElapsedSeconds();
  result.weights = x.ToDense();
  return result;
}

Result<double> EvaluateAccuracy(Context* ctx, const SparseDataset& data,
                                const std::vector<double>& weights,
                                uint64_t block, int num_partitions) {
  if (weights.size() != data.features) {
    return Status::InvalidArgument("weight vector size != feature count");
  }
  SPANGLE_ASSIGN_OR_RETURN(
      BlockMatrix m,
      BlockMatrix::FromEntries(ctx, data.rows, data.features, block,
                               data.entries, ModePolicy::Auto(),
                               PartitionScheme::kByRowBlock,
                               num_partitions));
  BlockVector w = BlockVector::FromDense(ctx, weights, block,
                                         num_partitions);
  SPANGLE_ASSIGN_OR_RETURN(BlockVector z, m.MultiplyVector(w));
  auto scores = z.ToDense();
  uint64_t correct = 0;
  for (uint64_t r = 0; r < data.rows; ++r) {
    const double predicted = Sigmoid(scores[r]) >= 0.5 ? 1.0 : 0.0;
    if (predicted == data.labels[r]) ++correct;
  }
  return 100.0 * static_cast<double>(correct) /
         static_cast<double>(data.rows);
}

}  // namespace spangle
