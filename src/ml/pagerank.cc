#include "ml/pagerank.h"

#include <cmath>

#include "common/stopwatch.h"
#include "matrix/mask_matrix.h"

namespace spangle {

Result<PageRankResult> PageRank(
    Context* ctx, uint64_t n,
    const std::vector<std::pair<uint64_t, uint64_t>>& edges,
    const PageRankOptions& options) {
  if (n == 0) return Status::InvalidArgument("graph has no vertices");
  // A'[dst][src] = 1 for every edge src -> dst.
  std::vector<std::pair<uint64_t, uint64_t>> dst_src;
  dst_src.reserve(edges.size());
  for (const auto& [src, dst] : edges) dst_src.emplace_back(dst, src);
  SPANGLE_ASSIGN_OR_RETURN(
      MaskMatrix a_prime,
      MaskMatrix::FromEdges(ctx, n, options.block, dst_src,
                            options.super_sparse,
                            PartitionScheme::kHashChunk,
                            options.num_partitions));
  a_prime.Cache(options.storage_level);

  // w[j] = 1 / outdeg(j); dangling nodes keep w = 0 (the basic variant
  // the paper evaluates).
  auto degrees = a_prime.ColumnDegrees();
  std::vector<double> w(n, 0.0);
  std::vector<double> dangling_ind(n, 0.0);
  for (uint64_t j = 0; j < n; ++j) {
    if (degrees[j] > 0) {
      w[j] = 1.0 / static_cast<double>(degrees[j]);
    } else {
      dangling_ind[j] = 1.0;
    }
  }
  BlockVector w_vec = BlockVector::FromDense(ctx, w, options.block,
                                             options.num_partitions);
  w_vec.Cache();
  BlockVector dangling_vec = BlockVector::FromDense(
      ctx, dangling_ind, options.block, options.num_partitions);
  dangling_vec.Cache();

  const double alpha = options.damping;
  const double teleport = (1.0 - alpha) / static_cast<double>(n);
  BlockVector p = BlockVector::FromDense(
      ctx, std::vector<double>(n, 1.0 / static_cast<double>(n)),
      options.block, options.num_partitions);

  PageRankResult result;
  result.matrix_bytes = a_prime.MemoryBytes();
  result.iteration_seconds.reserve(options.iterations);
  result.ranks = p.ToDense();
  for (int it = 0; it < options.iterations; ++it) {
    Stopwatch timer;
    // p <- alpha * (A'(w o p) + dangling_mass/n) + (1 - alpha)/n.
    SPANGLE_ASSIGN_OR_RETURN(BlockVector wp, w_vec.Hadamard(p));
    SPANGLE_ASSIGN_OR_RETURN(BlockVector ap, a_prime.MultiplyVector(wp));
    double dangling_share = 0.0;
    if (options.redistribute_dangling) {
      SPANGLE_ASSIGN_OR_RETURN(BlockVector dp, dangling_vec.Hadamard(p));
      dangling_share = dp.Sum() / static_cast<double>(n);
    }
    p = ap.Map([alpha, teleport, dangling_share](double v) {
      return alpha * (v + dangling_share) + teleport;
    });
    p.Cache(options.storage_level);
    auto next = p.ToDense();  // action: materializes this iteration
    double delta = 0;
    for (uint64_t v = 0; v < n; ++v) {
      delta += std::abs(next[v] - result.ranks[v]);
    }
    result.ranks = std::move(next);
    result.deltas.push_back(delta);
    result.iteration_seconds.push_back(timer.ElapsedSeconds());
    if (options.on_iteration) options.on_iteration(it, delta);
    if (options.tolerance > 0 && delta < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace spangle
