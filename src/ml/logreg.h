#ifndef SPANGLE_ML_LOGREG_H_
#define SPANGLE_ML_LOGREG_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "matrix/block_matrix.h"

namespace spangle {

/// A sparse binary-classification dataset: a rows x features design
/// matrix in COO form plus 0/1 labels.
struct SparseDataset {
  uint64_t rows = 0;
  uint64_t features = 0;
  std::vector<MatrixEntry> entries;
  std::vector<double> labels;  // size == rows, values in {0, 1}
};

/// Options for the customized parallel mini-batch SGD (paper Sec. VI-C).
struct LogRegOptions {
  double step_size = 0.6;       // theta (the paper's setting)
  double tolerance = 1e-4;      // stop when ||x_{t+1} - x_t|| < tolerance
  int max_iterations = 200;
  double batch_fraction = 0.25; // the paper's alpha: samples per step
  uint64_t block = 64;          // tile edge (rows and features)
  int num_partitions = 0;       // 0 = context default
  uint64_t seed = 42;           // mini-batch sampling seed

  /// opt1 (Eq. 3): compute ((h(Mx) - y)^T M)^T instead of M^T (h(Mx) - y),
  /// avoiding the per-step physical transpose of the training matrix.
  bool opt1 = true;
  /// opt2: the gradient row vector becomes a column vector by replacing
  /// metadata only, never copying the layout.
  bool opt2 = true;
  /// Adagrad per-feature step adaptation — the "highly optimized
  /// algorithm" the paper leaves as future work (Sec. VII-C):
  /// x -= step * g / (sqrt(sum of squared historical g) + eps).
  bool adagrad = false;
  double adagrad_epsilon = 1e-8;
};

struct TrainResult {
  std::vector<double> weights;
  int iterations = 0;
  bool converged = false;
  std::vector<double> iteration_seconds;
  double total_seconds = 0;
};

/// Trains logistic regression with the Spangle-customized SGD: the
/// training matrix is placed kByRowBlock so each partition owns whole row
/// bands (the Eq. 2 chunk-id scheme), mini-batches are drawn by filtering
/// row blocks locally (no shuffle), and the two transpose optimizations
/// are applied per `options`.
Result<TrainResult> TrainLogReg(Context* ctx, const SparseDataset& data,
                                const LogRegOptions& options = {});

/// Classification accuracy (%) of `weights` on `data`.
Result<double> EvaluateAccuracy(Context* ctx, const SparseDataset& data,
                                const std::vector<double>& weights,
                                uint64_t block = 64, int num_partitions = 0);

}  // namespace spangle

#endif  // SPANGLE_ML_LOGREG_H_
