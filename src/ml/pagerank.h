#ifndef SPANGLE_ML_PAGERANK_H_
#define SPANGLE_ML_PAGERANK_H_

#include <functional>
#include <utility>
#include <vector>

#include "common/result.h"
#include "engine/engine.h"

namespace spangle {

/// Options for the Spangle PageRank (paper Sec. VI-B).
struct PageRankOptions {
  double damping = 0.85;       // alpha
  int iterations = 20;         // maximum power-method iterations
  uint64_t block = 1024;       // tile edge length of A'
  bool super_sparse = false;   // force hierarchical tiles (LiveJournal mode)
  int num_partitions = 0;      // 0 = context default

  /// The paper evaluates the basic variant (dangling mass leaks); this
  /// extension redistributes dangling rank uniformly so ranks stay a
  /// probability distribution.
  bool redistribute_dangling = false;
  /// > 0 stops early once the L1 change between iterations drops below
  /// this (a standard PageRank variant; 0 keeps the fixed count).
  double tolerance = 0.0;

  /// Storage level for the cached iterate (rank vector) and matrix tiles.
  StorageLevel storage_level = StorageLevel::kMemoryOnly;

  /// Called at the end of every power iteration with (iteration, delta).
  /// Used by the fault-tolerance tests to inject executor failures
  /// mid-computation; leave empty in production runs.
  std::function<void(int, double)> on_iteration;
};

struct PageRankResult {
  std::vector<double> ranks;
  std::vector<double> iteration_seconds;  // wall time per power iteration
  std::vector<double> deltas;             // L1 change per iteration
  size_t matrix_bytes = 0;                // in-memory size of A'
  bool converged = false;                 // hit `tolerance` before the cap
};

/// The paper's decomposition: the transition matrix A = A' . diag(w) where
/// A' is the *unweighted* connectivity matrix — representable as a pure
/// bitmask (one bit per edge) — and w[j] = 1/outdegree(j). Each power
/// iteration computes  p <- alpha * A' (w o p) + (1 - alpha)/n  so the
/// 8-bytes-per-edge weight matrix never exists.
///
/// `edges` are (src, dst) pairs; n is the vertex count.
Result<PageRankResult> PageRank(
    Context* ctx, uint64_t n,
    const std::vector<std::pair<uint64_t, uint64_t>>& edges,
    const PageRankOptions& options = {});

}  // namespace spangle

#endif  // SPANGLE_ML_PAGERANK_H_
