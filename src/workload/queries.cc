#include "workload/queries.h"

#include "ops/aggregator.h"
#include "ops/operators.h"

namespace spangle {

uint64_t CountCellsWhere(const ArrayRdd& array,
                         const std::function<bool(double)>& pred) {
  return array.chunks().AsRdd().Aggregate<uint64_t>(
      0,
      [&pred](uint64_t acc, const std::pair<ChunkId, Chunk>& rec) {
        rec.second.ForEachValid([&](uint32_t, double v) {
          if (pred(v)) ++acc;
        });
        return acc;
      },
      [](uint64_t a, uint64_t b) { return a + b; });
}

SpangleRasterEngine::SpangleRasterEngine(SpangleArray array,
                                         uint64_t overlap_radius,
                                         const std::string& overlap_attr)
    : array_(std::move(array)), overlap_radius_(overlap_radius) {
  array_.Cache();
  if (overlap_radius_ > 0 && array_.HasAttribute(overlap_attr)) {
    // Load-time halo exchange: paid once here, amortized over queries
    // (the paper's overlap is established at chunk creation).
    auto attr_rdd = array_.Attribute(overlap_attr);
    if (attr_rdd.ok()) {
      overlap_ = OverlapArrayRdd::Build(*attr_rdd, overlap_radius_);
      overlap_.Cache();
      overlap_.expanded_chunks().Count();  // materialize now
      overlap_built_ = true;
      overlap_attr_ = overlap_attr;
    }
  }
}

Result<SpangleArray> SpangleRasterEngine::Selected(
    const QueryParams& q) const {
  if (!q.use_range) return array_;
  return Subarray(array_, q.lo, q.hi);
}

Result<double> SpangleRasterEngine::Q1Average(const QueryParams& q) {
  SPANGLE_ASSIGN_OR_RETURN(SpangleArray selected, Selected(q));
  return Aggregate(selected, q.attr, AvgAgg());
}

Result<ArrayRdd> SpangleRasterEngine::RegridVia(const QueryParams& q,
                                                const AggregateFunction& fn) {
  // Without a range predicate the pre-built overlap lets the regrid run
  // with zero raw-cell exchange (paper Sec. III-A; used for Q2/Q5).
  if (!q.use_range && overlap_built_ && overlap_attr_ == q.attr) {
    auto local = overlap_.RegridAggregateLocal(fn, q.grid);
    if (local.ok()) return local;
    // Radius too small for this grid: fall through to the shuffle path.
  }
  SPANGLE_ASSIGN_OR_RETURN(SpangleArray selected, Selected(q));
  return RegridAggregate(selected, q.attr, fn, q.grid);
}

Result<uint64_t> SpangleRasterEngine::Q2Regrid(const QueryParams& q) {
  SPANGLE_ASSIGN_OR_RETURN(ArrayRdd regridded, RegridVia(q, AvgAgg()));
  return regridded.CountValid();
}

Result<double> SpangleRasterEngine::Q3FilteredAverage(const QueryParams& q) {
  SPANGLE_ASSIGN_OR_RETURN(SpangleArray selected, Selected(q));
  const double threshold = q.threshold;
  SPANGLE_ASSIGN_OR_RETURN(
      SpangleArray filtered,
      Filter(selected, q.attr, [threshold](double v) { return v > threshold; }));
  return Aggregate(filtered, q.attr, AvgAgg());
}

Result<uint64_t> SpangleRasterEngine::Q4Polygons(const QueryParams& q) {
  SPANGLE_ASSIGN_OR_RETURN(SpangleArray selected, Selected(q));
  const double t1 = q.threshold;
  SPANGLE_ASSIGN_OR_RETURN(
      SpangleArray pass1,
      Filter(selected, q.attr, [t1](double v) { return v > t1; }));
  const double t2 = q.threshold2;
  SPANGLE_ASSIGN_OR_RETURN(
      SpangleArray pass2,
      Filter(pass1, q.attr2, [t2](double v) { return v > t2; }));
  return pass2.CountValid();
}

Result<uint64_t> SpangleRasterEngine::Q5Density(const QueryParams& q) {
  SPANGLE_ASSIGN_OR_RETURN(ArrayRdd counts, RegridVia(q, CountAgg()));
  const double cut = q.min_count;
  return CountCellsWhere(counts, [cut](double v) { return v > cut; });
}

}  // namespace spangle
