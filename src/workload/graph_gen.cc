#include "workload/graph_gen.h"

#include <algorithm>
#include <unordered_set>

#include "common/random.h"

namespace spangle {

std::vector<std::pair<uint64_t, uint64_t>> GenerateRmat(
    const RmatOptions& options) {
  Rng rng(options.seed);
  const uint64_t n = uint64_t{1} << options.scale;
  const uint64_t target = n * options.edges_per_vertex;
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  edges.reserve(target);
  std::unordered_set<uint64_t> seen;
  const double ab = options.a + options.b;
  const double abc = ab + options.c;
  uint64_t attempts = 0;
  while (edges.size() < target && attempts < target * 8) {
    ++attempts;
    uint64_t src = 0, dst = 0;
    for (uint32_t level = 0; level < options.scale; ++level) {
      const double r = rng.NextDouble();
      src <<= 1;
      dst <<= 1;
      if (r < options.a) {
        // top-left quadrant: no bits set
      } else if (r < ab) {
        dst |= 1;
      } else if (r < abc) {
        src |= 1;
      } else {
        src |= 1;
        dst |= 1;
      }
    }
    if (!options.allow_self_loops && src == dst) continue;
    if (options.deduplicate) {
      if (!seen.insert(src * n + dst).second) continue;
    }
    edges.emplace_back(src, dst);
  }
  return edges;
}

std::vector<std::pair<uint64_t, uint64_t>> GenerateUniformGraph(
    uint64_t n, uint64_t m, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  edges.reserve(m);
  std::unordered_set<uint64_t> seen;
  while (edges.size() < m) {
    const uint64_t src = rng.NextBounded(n);
    const uint64_t dst = rng.NextBounded(n);
    if (src == dst) continue;
    if (!seen.insert(src * n + dst).second) continue;
    edges.emplace_back(src, dst);
  }
  return edges;
}

}  // namespace spangle
