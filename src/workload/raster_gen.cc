#include "workload/raster_gen.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/random.h"

namespace spangle {

Result<SpangleArray> RasterData::ToSpangle(Context* ctx, ModePolicy policy,
                                           bool use_mask_rdd) const {
  std::vector<std::pair<std::string, ArrayRdd>> attrs;
  for (size_t a = 0; a < attr_names.size(); ++a) {
    SPANGLE_ASSIGN_OR_RETURN(ArrayRdd rdd,
                             ArrayRdd::FromCells(ctx, meta, cells[a], policy));
    attrs.emplace_back(attr_names[a], std::move(rdd));
  }
  return SpangleArray::FromAttributes(std::move(attrs), use_mask_rdd);
}

RasterData GenerateSky(const SkyOptions& options) {
  RasterData data;
  data.meta = *ArrayMetadata::Make(
      {{"img", 0, options.images, 1, 0},
       {"x", 0, options.width, options.chunk, 0},
       {"y", 0, options.height, options.chunk, 0}});
  static const char* const kBandNames[] = {"u", "g", "r", "i", "z"};
  for (uint64_t b = 0; b < options.bands; ++b) {
    data.attr_names.push_back(b < 5 ? kBandNames[b]
                                    : "band" + std::to_string(b));
  }
  data.cells.resize(options.bands);
  Rng rng(options.seed);
  const uint64_t sources_per_image = static_cast<uint64_t>(
      options.source_density * static_cast<double>(options.width) *
      static_cast<double>(options.height));
  for (uint64_t img = 0; img < options.images; ++img) {
    // Use per-band maps so a pixel lit by two overlapping sources sums.
    std::vector<std::unordered_map<uint64_t, double>> pixels(options.bands);
    for (uint64_t s = 0; s < sources_per_image; ++s) {
      const int64_t cx =
          static_cast<int64_t>(rng.NextBounded(options.width));
      const int64_t cy =
          static_cast<int64_t>(rng.NextBounded(options.height));
      const double flux = std::exp(rng.NextGaussian());  // log-normal
      const int radius = 1 + static_cast<int>(rng.NextBounded(2));
      for (int64_t dx = -radius; dx <= radius; ++dx) {
        for (int64_t dy = -radius; dy <= radius; ++dy) {
          const int64_t x = cx + dx, y = cy + dy;
          if (x < 0 || y < 0 ||
              x >= static_cast<int64_t>(options.width) ||
              y >= static_cast<int64_t>(options.height)) {
            continue;
          }
          const double falloff =
              std::exp(-0.5 * static_cast<double>(dx * dx + dy * dy));
          // Each band sees the source with a band-dependent response.
          for (uint64_t b = 0; b < options.bands; ++b) {
            const double response =
                0.4 + 0.2 * static_cast<double>((b * 7 + s) % 4);
            pixels[b][static_cast<uint64_t>(x) * options.height +
                      static_cast<uint64_t>(y)] +=
                flux * falloff * response;
          }
        }
      }
    }
    for (uint64_t b = 0; b < options.bands; ++b) {
      for (const auto& [key, v] : pixels[b]) {
        const int64_t x = static_cast<int64_t>(key / options.height);
        const int64_t y = static_cast<int64_t>(key % options.height);
        data.cells[b].push_back(
            {{static_cast<int64_t>(img), x, y}, v});
      }
    }
  }
  return data;
}

RasterData GenerateChl(const ChlOptions& options) {
  RasterData data;
  data.meta = *ArrayMetadata::Make(
      {{"lon", 0, options.lon, options.chunk_lon, 0},
       {"lat", 0, options.lat, options.chunk_lat, 0},
       {"time", 0, options.time, 1, 0}});
  data.attr_names = {"chlorophyll"};
  data.cells.resize(1);
  Rng rng(options.seed);
  // Land is generated as blobby patches: a coarse 16x16 grid of
  // land/ocean flags smoothed by majority, giving contiguous land masses
  // rather than salt-and-pepper noise.
  const uint64_t gx = 16, gy = 16;
  std::vector<bool> land_grid(gx * gy);
  for (auto&& cell : land_grid) cell = rng.NextBool(options.land_fraction);
  auto is_land = [&](uint64_t lon, uint64_t lat) {
    const uint64_t cx = lon * gx / options.lon;
    const uint64_t cy = lat * gy / options.lat;
    return land_grid[cx * gy + cy];
  };
  for (uint64_t t = 0; t < options.time; ++t) {
    for (uint64_t lon = 0; lon < options.lon; ++lon) {
      for (uint64_t lat = 0; lat < options.lat; ++lat) {
        if (is_land(lon, lat)) continue;
        // Chlorophyll is higher near the poles and coasts; keep a simple
        // latitude gradient plus noise.
        const double latitude_factor =
            0.2 + std::abs(static_cast<double>(lat) /
                               static_cast<double>(options.lat) -
                           0.5);
        const double v =
            latitude_factor * (1.0 + 0.3 * rng.NextGaussian());
        data.cells[0].push_back({{static_cast<int64_t>(lon),
                                  static_cast<int64_t>(lat),
                                  static_cast<int64_t>(t)},
                                 std::max(0.01, v)});
      }
    }
  }
  return data;
}

}  // namespace spangle
