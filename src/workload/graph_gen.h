#ifndef SPANGLE_WORKLOAD_GRAPH_GEN_H_
#define SPANGLE_WORKLOAD_GRAPH_GEN_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace spangle {

/// R-MAT graph generator (Chakrabarti et al.): recursive quadrant
/// sampling with probabilities (a, b, c, d) produces the power-law
/// degree distributions of the paper's SNAP/Twitter graphs at any scale.
struct RmatOptions {
  uint32_t scale = 10;            // n = 2^scale vertices
  uint64_t edges_per_vertex = 8;  // m = n * edges_per_vertex
  double a = 0.57, b = 0.19, c = 0.19;  // d = 1 - a - b - c
  bool deduplicate = true;
  bool allow_self_loops = false;
  uint64_t seed = 17;
};

/// Returns directed (src, dst) edges.
std::vector<std::pair<uint64_t, uint64_t>> GenerateRmat(
    const RmatOptions& options);

/// Uniform Erdos–Renyi style edges: m edges drawn uniformly (for low-skew
/// controls).
std::vector<std::pair<uint64_t, uint64_t>> GenerateUniformGraph(
    uint64_t n, uint64_t m, uint64_t seed);

}  // namespace spangle

#endif  // SPANGLE_WORKLOAD_GRAPH_GEN_H_
