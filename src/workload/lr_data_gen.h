#ifndef SPANGLE_WORKLOAD_LR_DATA_GEN_H_
#define SPANGLE_WORKLOAD_LR_DATA_GEN_H_

#include <string>

#include "ml/logreg.h"

namespace spangle {

/// Synthetic sparse classification data shaped like the paper's Table IIc
/// datasets (URL reputation, KDD Cup): many sparse binary-ish features, a
/// linearly separable core with label noise.
struct LrDataOptions {
  uint64_t rows = 4096;
  uint64_t features = 1024;
  uint64_t nnz_per_row = 32;
  double label_noise = 0.05;
  uint64_t seed = 31;
};

struct LrSplit {
  SparseDataset train;
  SparseDataset test;
};

/// Generates the dataset and splits it 80/20 (the paper's split).
LrSplit GenerateLrData(const LrDataOptions& options);

}  // namespace spangle

#endif  // SPANGLE_WORKLOAD_LR_DATA_GEN_H_
