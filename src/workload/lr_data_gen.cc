#include "workload/lr_data_gen.h"

#include <cmath>
#include <unordered_set>

#include "common/random.h"

namespace spangle {

LrSplit GenerateLrData(const LrDataOptions& options) {
  Rng rng(options.seed);
  // Ground-truth weights: half the features carry signal, so a row's
  // margin |z| is usually far from the decision boundary and the Bayes
  // accuracy is high (the paper's datasets reach 86-95%).
  std::vector<double> w_true(options.features, 0.0);
  for (uint64_t f = 0; f < options.features; ++f) {
    if (rng.NextBool(0.5)) w_true[f] = rng.NextGaussian() * 2.0;
  }
  SparseDataset all;
  all.rows = options.rows;
  all.features = options.features;
  all.labels.resize(options.rows);
  for (uint64_t r = 0; r < options.rows; ++r) {
    std::unordered_set<uint64_t> cols;
    double z = 0;
    while (cols.size() < options.nnz_per_row) {
      const uint64_t c = rng.NextBounded(options.features);
      if (!cols.insert(c).second) continue;
      const double v = rng.NextDouble(0.5, 1.5);
      all.entries.push_back({r, c, v});
      z += v * w_true[c];
    }
    const double p = 1.0 / (1.0 + std::exp(-z));
    double label = p >= 0.5 ? 1.0 : 0.0;
    if (rng.NextBool(options.label_noise)) label = 1.0 - label;
    all.labels[r] = label;
  }
  // 80/20 split by row index (rows are i.i.d., so a prefix split is a
  // random split).
  const uint64_t train_rows = options.rows * 8 / 10;
  LrSplit split;
  split.train.rows = train_rows;
  split.train.features = options.features;
  split.test.rows = options.rows - train_rows;
  split.test.features = options.features;
  split.train.labels.assign(all.labels.begin(),
                            all.labels.begin() + train_rows);
  split.test.labels.assign(all.labels.begin() + train_rows,
                           all.labels.end());
  for (const auto& e : all.entries) {
    if (e.row < train_rows) {
      split.train.entries.push_back(e);
    } else {
      split.test.entries.push_back({e.row - train_rows, e.col, e.value});
    }
  }
  return split;
}

}  // namespace spangle
