#ifndef SPANGLE_WORKLOAD_QUERIES_H_
#define SPANGLE_WORKLOAD_QUERIES_H_

#include <string>
#include <vector>

#include "array/spangle_array.h"
#include "ops/overlap.h"

namespace spangle {

/// Parameters for the Table I benchmark queries (after the SS-DB
/// scientific benchmark). Boxes are closed; `use_range` off reproduces
/// the Fig. 7a variant that omits the range predicate.
struct QueryParams {
  Coords lo, hi;                 // spatial selection box
  bool use_range = true;
  std::string attr = "u";        // primary attribute
  std::string attr2 = "g";       // Q4's second attribute
  double threshold = 0.5;        // Q3/Q4 value condition: v > threshold
  double threshold2 = 1.0;       // Q4 second condition on attr2
  std::vector<uint64_t> grid;    // Q2/Q5 regrid block edge per dimension
  double min_count = 3;          // Q5: groups with more observations
};

/// Engine-agnostic query suite: Spangle and every baseline system
/// implement these five entry points so the Fig. 7 benches drive them
/// identically and can cross-check results.
class RasterEngine {
 public:
  virtual ~RasterEngine() = default;
  virtual std::string name() const = 0;

  /// Q1 (Aggregation): average value of the selected cells.
  virtual Result<double> Q1Average(const QueryParams& q) = 0;
  /// Q2 (Regridding): block-average regrid; returns output cell count.
  virtual Result<uint64_t> Q2Regrid(const QueryParams& q) = 0;
  /// Q3 (Aggregation): average of selected cells matching v > threshold.
  virtual Result<double> Q3FilteredAverage(const QueryParams& q) = 0;
  /// Q4 (Polygons): among selected cells passing the attr condition,
  /// count those whose attr2 value passes the second condition.
  virtual Result<uint64_t> Q4Polygons(const QueryParams& q) = 0;
  /// Q5 (Density): group cells into grid blocks; count blocks holding
  /// more than min_count observations.
  virtual Result<uint64_t> Q5Density(const QueryParams& q) = 0;
};

/// Spangle's implementation: Subarray/Filter update the MaskRdd lazily,
/// aggregation reconciles on demand, and Q2/Q5 run on the pre-built
/// overlap (ghost cells) when available, avoiding the regrid shuffle.
class SpangleRasterEngine : public RasterEngine {
 public:
  /// `overlap_radius` > 0 pre-builds ghost cells for attribute
  /// `overlap_attr` at construction — a load-time cost, like the paper's
  /// overlap which is set at chunk creation and used by Q2 and Q5.
  SpangleRasterEngine(SpangleArray array, uint64_t overlap_radius = 0,
                      const std::string& overlap_attr = "u");

  std::string name() const override { return "Spangle"; }
  Result<double> Q1Average(const QueryParams& q) override;
  Result<uint64_t> Q2Regrid(const QueryParams& q) override;
  Result<double> Q3FilteredAverage(const QueryParams& q) override;
  Result<uint64_t> Q4Polygons(const QueryParams& q) override;
  Result<uint64_t> Q5Density(const QueryParams& q) override;

 private:
  Result<SpangleArray> Selected(const QueryParams& q) const;
  /// Regrids via the pre-built overlap when the query allows it (no
  /// range, matching attribute, enough radius), else the shuffle path.
  Result<ArrayRdd> RegridVia(const QueryParams& q,
                             const AggregateFunction& fn);

  SpangleArray array_;
  uint64_t overlap_radius_ = 0;
  bool overlap_built_ = false;
  std::string overlap_attr_;
  OverlapArrayRdd overlap_;
};

/// Counts valid cells of `array` whose value satisfies `pred`.
uint64_t CountCellsWhere(const ArrayRdd& array,
                         const std::function<bool(double)>& pred);

}  // namespace spangle

#endif  // SPANGLE_WORKLOAD_QUERIES_H_
