#ifndef SPANGLE_WORKLOAD_RASTER_GEN_H_
#define SPANGLE_WORKLOAD_RASTER_GEN_H_

#include <string>
#include <vector>

#include "array/spangle_array.h"

namespace spangle {

/// Generator-produced raster data: the logical cells per attribute plus
/// the metadata. Kept engine-agnostic so the same dataset feeds Spangle
/// and every baseline system in the Fig. 7 benches.
struct RasterData {
  ArrayMetadata meta;
  std::vector<std::string> attr_names;
  // cells[a] = valid cells of attribute a.
  std::vector<std::vector<CellValue>> cells;

  uint64_t TotalValid() const {
    uint64_t n = 0;
    for (const auto& c : cells) n += c.size();
    return n;
  }

  /// Loads into a Spangle multi-attribute array.
  Result<SpangleArray> ToSpangle(Context* ctx,
                                 ModePolicy policy = ModePolicy::Auto(),
                                 bool use_mask_rdd = true) const;
};

/// SDSS-like sky survey images (paper Sec. VII-B): a stack of `images`
/// frames of `width x height` pixels with `bands` attributes (u g r i z).
/// The sky is mostly empty; `source_density` point sources per pixel are
/// splatted as small blobs, so valid cells cluster the way stars do.
/// Dimensions: (img, x, y); chunking (1, chunk, chunk).
struct SkyOptions {
  uint64_t images = 4;
  uint64_t width = 256;
  uint64_t height = 256;
  uint64_t bands = 5;
  uint64_t chunk = 128;
  double source_density = 0.002;  // sources per pixel
  uint64_t seed = 7;
};
RasterData GenerateSky(const SkyOptions& options);

/// SeaWiFS-chlorophyll-like data (paper's CHL): dims (lon, lat, time),
/// one attribute; ~`land_fraction` of the globe is land (null), the rest
/// holds positive chlorophyll values with a latitude gradient.
struct ChlOptions {
  uint64_t lon = 360;
  uint64_t lat = 180;
  uint64_t time = 4;
  uint64_t chunk_lon = 64;
  uint64_t chunk_lat = 64;
  double land_fraction = 0.35;
  uint64_t seed = 11;
};
RasterData GenerateChl(const ChlOptions& options);

}  // namespace spangle

#endif  // SPANGLE_WORKLOAD_RASTER_GEN_H_
