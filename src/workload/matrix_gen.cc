#include "workload/matrix_gen.h"

#include <unordered_set>

#include "common/random.h"

namespace spangle {

SyntheticMatrix GenerateUniformMatrix(const std::string& name, uint64_t rows,
                                      uint64_t cols, double density,
                                      uint64_t seed) {
  SyntheticMatrix m;
  m.name = name;
  m.rows = rows;
  m.cols = cols;
  m.density = density;
  Rng rng(seed);
  const uint64_t target = static_cast<uint64_t>(
      density * static_cast<double>(rows) * static_cast<double>(cols));
  std::unordered_set<uint64_t> seen;
  m.entries.reserve(target);
  while (m.entries.size() < target) {
    const uint64_t r = rng.NextBounded(rows);
    const uint64_t c = rng.NextBounded(cols);
    if (!seen.insert(r * cols + c).second) continue;
    m.entries.push_back({r, c, rng.NextDouble(0.1, 2.0)});
  }
  return m;
}

SyntheticMatrix GeneratePowerLawMatrix(const std::string& name, uint64_t rows,
                                       uint64_t cols, uint64_t nnz,
                                       double skew, uint64_t seed) {
  SyntheticMatrix m;
  m.name = name;
  m.rows = rows;
  m.cols = cols;
  m.density = static_cast<double>(nnz) /
              (static_cast<double>(rows) * static_cast<double>(cols));
  Rng rng(seed);
  std::unordered_set<uint64_t> seen;
  m.entries.reserve(nnz);
  uint64_t attempts = 0;
  while (m.entries.size() < nnz && attempts < nnz * 8) {
    ++attempts;
    const uint64_t r = rng.NextZipf(rows, skew);
    const uint64_t c = rng.NextZipf(cols, skew);
    if (!seen.insert(r * cols + c).second) continue;
    m.entries.push_back({r, c, rng.NextDouble(0.1, 2.0)});
  }
  return m;
}

std::vector<SyntheticMatrix> TableIIaMatrices(uint64_t shrink, uint64_t seed) {
  // Paper shapes: Covtype 581Kx54 (d=0.218), Mouse 45Kx45K (0.014),
  // Hardesty 8Mx8M (6.4e-7), Mawi 129Mx129M (9.3e-9). Densities are kept;
  // dimensions shrink by `shrink`. The two network-trace matrices are
  // skewed, so they use the power-law generator.
  std::vector<SyntheticMatrix> out;
  const uint64_t covtype_rows = std::max<uint64_t>(64, 581012 / shrink);
  out.push_back(GenerateUniformMatrix("covtype", covtype_rows, 54, 0.218,
                                      seed));
  const uint64_t mouse_n = std::max<uint64_t>(64, 45000 / shrink);
  out.push_back(
      GenerateUniformMatrix("mouse", mouse_n, mouse_n, 0.014, seed + 1));
  const uint64_t hardesty_n = std::max<uint64_t>(256, 8000000 / shrink);
  const uint64_t hardesty_nnz = std::max<uint64_t>(
      100, static_cast<uint64_t>(6.4e-7 * static_cast<double>(hardesty_n) *
                                 static_cast<double>(hardesty_n)));
  out.push_back(GeneratePowerLawMatrix("hardesty", hardesty_n, hardesty_n,
                                       hardesty_nnz, 1.2, seed + 2));
  const uint64_t mawi_n = std::max<uint64_t>(512, 129000000 / shrink);
  const uint64_t mawi_nnz = std::max<uint64_t>(
      100, static_cast<uint64_t>(9.3e-9 * static_cast<double>(mawi_n) *
                                 static_cast<double>(mawi_n)));
  out.push_back(
      GeneratePowerLawMatrix("mawi", mawi_n, mawi_n, mawi_nnz, 1.3, seed + 3));
  return out;
}

}  // namespace spangle
