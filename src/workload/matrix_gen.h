#ifndef SPANGLE_WORKLOAD_MATRIX_GEN_H_
#define SPANGLE_WORKLOAD_MATRIX_GEN_H_

#include <string>
#include <vector>

#include "matrix/block_matrix.h"

namespace spangle {

/// Synthetic stand-ins for the paper's Table IIa matrices (Covtype,
/// Mouse, Hardesty, Mawi), preserving each dataset's *density* — the
/// property the paper shows dominates matrix-op performance — at
/// laptop-feasible dimensions.
struct SyntheticMatrix {
  std::string name;
  uint64_t rows = 0;
  uint64_t cols = 0;
  double density = 0;
  std::vector<MatrixEntry> entries;
};

/// Uniform random sparse matrix with exactly ~density * rows * cols
/// non-zeros.
SyntheticMatrix GenerateUniformMatrix(const std::string& name, uint64_t rows,
                                      uint64_t cols, double density,
                                      uint64_t seed);

/// Power-law sparse matrix: row populations follow a Zipf distribution,
/// mimicking the network-trace matrices (Mawi) where a few rows are hot.
SyntheticMatrix GeneratePowerLawMatrix(const std::string& name, uint64_t rows,
                                       uint64_t cols, uint64_t nnz,
                                       double skew, uint64_t seed);

/// The four Table IIa stand-ins at 1/`shrink` of the paper's dimensions,
/// each with the paper's density.
std::vector<SyntheticMatrix> TableIIaMatrices(uint64_t shrink,
                                              uint64_t seed = 23);

}  // namespace spangle

#endif  // SPANGLE_WORKLOAD_MATRIX_GEN_H_
